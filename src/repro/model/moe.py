"""DeepSeekMoE layer: fine-grained experts + shared experts (Section 2.2).

The numpy forward path computes exactly what an EP deployment computes:
each token is processed by its shared expert(s) plus the top-k routed
experts chosen by the gate, with outputs mixed by the normalized gate
weights.  The layer also reports the routing decision so the
communication simulators can replay real dispatch patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import MoEConfig
from .routing import MoEGate, RoutingDecision


def swiglu(x: np.ndarray, w_gate: np.ndarray, w_up: np.ndarray, w_down: np.ndarray) -> np.ndarray:
    """SwiGLU FFN: ``(silu(x @ w_gate) * (x @ w_up)) @ w_down``."""
    gate = x @ w_gate
    silu = gate / (1.0 + np.exp(-gate))
    return (silu * (x @ w_up)) @ w_down


@dataclass
class ExpertWeights:
    """Weights of one SwiGLU expert."""

    w_gate: np.ndarray
    w_up: np.ndarray
    w_down: np.ndarray

    @classmethod
    def create(
        cls, hidden_size: int, intermediate_size: int, rng: np.random.Generator
    ) -> "ExpertWeights":
        """Random-initialize one expert."""

        def init(fan_in: int, fan_out: int) -> np.ndarray:
            return rng.normal(0.0, 1.0 / np.sqrt(fan_in), size=(fan_in, fan_out)).astype(
                np.float32
            )

        return cls(
            w_gate=init(hidden_size, intermediate_size),
            w_up=init(hidden_size, intermediate_size),
            w_down=init(intermediate_size, hidden_size),
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply the expert FFN to tokens [n, hidden]."""
        return swiglu(x, self.w_gate, self.w_up, self.w_down)


class DenseFfn:
    """Ordinary dense SwiGLU FFN (the first-k dense layers of V2/V3)."""

    def __init__(self, hidden_size: int, intermediate_size: int, rng: np.random.Generator) -> None:
        self.expert = ExpertWeights.create(hidden_size, intermediate_size, rng)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply to [.., hidden]; shape-preserving."""
        flat = x.reshape(-1, x.shape[-1])
        return self.expert(flat).reshape(x.shape)


class DeepSeekMoELayer:
    """A DeepSeekMoE layer: gate + routed experts + shared experts."""

    def __init__(self, moe: MoEConfig, hidden_size: int, rng: np.random.Generator) -> None:
        self.moe = moe
        self.hidden_size = hidden_size
        self.gate = MoEGate(moe, hidden_size, rng)
        self.routed_experts = [
            ExpertWeights.create(hidden_size, moe.intermediate_size, rng)
            for _ in range(moe.num_routed_experts)
        ]
        self.shared_experts = [
            ExpertWeights.create(hidden_size, moe.intermediate_size, rng)
            for _ in range(moe.num_shared_experts)
        ]
        self.last_decision: RoutingDecision | None = None

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Apply the MoE layer to ``x`` [..., hidden].

        Tokens are flattened, routed, dispatched to their experts,
        combined with gate weights, and shared-expert output is added —
        the same dataflow DeepEP's dispatch/combine implements across
        GPUs.
        """
        flat = x.reshape(-1, self.hidden_size)
        decision = self.gate.route(flat)
        self.last_decision = decision

        out = np.zeros_like(flat)
        for slot in range(self.moe.experts_per_token):
            expert_ids = decision.expert_ids[:, slot]
            weights = decision.weights[:, slot]
            for expert_id in np.unique(expert_ids):
                members = expert_ids == expert_id
                out[members] += (
                    weights[members, None]
                    * self.routed_experts[int(expert_id)](flat[members])
                )
        for shared in self.shared_experts:
            out += shared(flat)
        return out.reshape(x.shape)
