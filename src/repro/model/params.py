"""Parameter counting for the model configurations.

Separates *total* parameters (what must be stored — the 671B of
DeepSeek-V3) from *activated* parameters (what one token actually
multiplies against — the 37B), the distinction Section 2.2.1 builds
its cost argument on.  Counts are derived purely from the
configuration, layer by layer, and validated against the published
totals in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from .config import AttentionConfig, AttentionKind, ModelConfig


def attention_params(attention: AttentionConfig, hidden_size: int) -> int:
    """Weight parameters of one attention block."""
    heads = attention.num_heads
    if attention.kind is AttentionKind.MLA:
        nope, rope = attention.qk_head_dim, attention.qk_rope_head_dim
        q_in = attention.q_lora_rank if attention.q_lora_rank else hidden_size
        total = 0
        if attention.q_lora_rank:
            total += hidden_size * attention.q_lora_rank  # w_dq
        total += q_in * heads * (nope + rope)  # w_uq
        total += hidden_size * attention.kv_lora_rank  # w_dkv
        total += hidden_size * rope  # w_kr
        total += attention.kv_lora_rank * heads * nope  # w_uk
        total += attention.kv_lora_rank * heads * attention.v_head_dim  # w_uv
        total += heads * attention.v_head_dim * hidden_size  # w_o
        return total
    qk, v, kv_heads = attention.qk_head_dim, attention.v_head_dim, attention.num_kv_heads
    return (
        hidden_size * heads * qk  # w_q
        + hidden_size * kv_heads * (qk + v)  # w_k, w_v
        + heads * v * hidden_size  # w_o
    )


def ffn_params(hidden_size: int, intermediate_size: int) -> int:
    """Weight parameters of one SwiGLU FFN (gate + up + down)."""
    return 3 * hidden_size * intermediate_size


@dataclass(frozen=True)
class ParamBreakdown:
    """Total vs activated parameter decomposition of a model."""

    model_name: str
    embedding: int
    output_head: int
    attention: int
    dense_ffn: int
    moe_total: int
    moe_active: int
    gates: int
    mtp_total: int
    mtp_active: int

    @property
    def total(self) -> int:
        """All stored parameters (the paper's headline model size)."""
        return (
            self.embedding
            + self.output_head
            + self.attention
            + self.dense_ffn
            + self.moe_total
            + self.gates
            + self.mtp_total
        )

    @property
    def total_main(self) -> int:
        """Stored parameters excluding MTP modules.

        DeepSeek-V3's headline "671B" counts the main model only; the
        checkpoint with the MTP module is ~685B.
        """
        return self.total - self.mtp_total

    @property
    def active(self) -> int:
        """Parameters touched per token (paper's 'activated')."""
        return (
            self.embedding
            + self.output_head
            + self.attention
            + self.dense_ffn
            + self.moe_active
            + self.gates
            + self.mtp_active
        )

    @property
    def active_linear(self) -> int:
        """Activated matmul parameters of the main model.

        This is the N in the ``6 N`` training-FLOPs rule: it excludes
        the embedding lookup (no matmul) and MTP modules (reported
        training cost refers to the main next-token path) but includes
        the output head.
        """
        return (
            self.output_head + self.attention + self.dense_ffn + self.moe_active + self.gates
        )


def count_params(model: ModelConfig) -> ParamBreakdown:
    """Count total and activated parameters of ``model``."""
    h = model.hidden_size
    embedding = model.vocab_size * h
    output_head = 0 if model.tie_embeddings else model.vocab_size * h
    attention = model.num_layers * attention_params(model.attention, h)

    if model.moe is None:
        dense_ffn = model.num_layers * ffn_params(h, model.ffn_intermediate_size)
        moe_total = moe_active = gates = 0
    else:
        moe = model.moe
        dense_ffn = model.num_dense_layers * ffn_params(h, model.ffn_intermediate_size)
        expert = ffn_params(h, moe.intermediate_size)
        per_layer_total = (moe.num_routed_experts + moe.num_shared_experts) * expert
        per_layer_active = moe.active_experts_per_token * expert
        moe_total = model.num_moe_layers * per_layer_total
        moe_active = model.num_moe_layers * per_layer_active
        gates = model.num_moe_layers * h * moe.num_routed_experts

    mtp_total = mtp_active = 0
    if model.num_mtp_modules:
        # Each MTP module: one full transformer layer (attention + the
        # model's FFN flavour) plus the 2h -> h combining projection.
        layer_attn = attention_params(model.attention, h)
        if model.moe is None:
            layer_ffn_total = layer_ffn_active = ffn_params(h, model.ffn_intermediate_size)
            layer_gate = 0
        else:
            expert = ffn_params(h, model.moe.intermediate_size)
            layer_ffn_total = (
                model.moe.num_routed_experts + model.moe.num_shared_experts
            ) * expert
            layer_ffn_active = model.moe.active_experts_per_token * expert
            layer_gate = h * model.moe.num_routed_experts
        proj = 2 * h * h
        mtp_total = model.num_mtp_modules * (layer_attn + layer_ffn_total + layer_gate + proj)
        mtp_active = model.num_mtp_modules * (layer_attn + layer_ffn_active + layer_gate + proj)

    return ParamBreakdown(
        model_name=model.name,
        embedding=embedding,
        output_head=output_head,
        attention=attention,
        dense_ffn=dense_ffn,
        moe_total=moe_total,
        moe_active=moe_active,
        gates=gates,
        mtp_total=mtp_total,
        mtp_active=mtp_active,
    )
