"""Model architecture configurations.

This module defines the configuration dataclasses for every model the
paper compares (Tables 1 and 2): DeepSeek-V2, DeepSeek-V3, Qwen-2.5 72B
and LLaMA-3.1 405B, plus scaled-down variants used by tests and the
tiny training pipeline.  The configurations carry exactly the
architectural parameters needed by the analytical models (KV cache
size, parameter counts, FLOPs) and by the runnable numpy kernels.

Values are taken from the public model releases referenced by the
paper (DeepSeek-V2/V3 technical reports, Qwen2.5 and Llama-3.1 model
cards).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class AttentionKind(enum.Enum):
    """The KV-cache strategies compared in Section 2.1.2."""

    MHA = "mha"
    MQA = "mqa"
    GQA = "gqa"
    MLA = "mla"


@dataclass(frozen=True)
class AttentionConfig:
    """Attention block configuration.

    For MHA/GQA/MQA, ``qk_head_dim`` is the ordinary head dimension and
    the MLA-only fields are ignored.  For MLA, following DeepSeek-V2/V3
    naming: queries/keys have a non-positional part of ``qk_head_dim``
    (the "nope" dim) plus a decoupled RoPE part of ``qk_rope_head_dim``;
    keys and values are jointly compressed into a ``kv_lora_rank``-dim
    latent, and queries through a ``q_lora_rank``-dim latent.

    Attributes:
        kind: Attention variant.
        num_heads: Number of query heads.
        qk_head_dim: Per-head query/key dim (non-RoPE part for MLA).
        v_head_dim: Per-head value dim.
        num_kv_heads: KV head count (1 for MQA, ``num_heads`` for MHA).
        kv_lora_rank: MLA joint KV compression rank (0 otherwise).
        q_lora_rank: MLA query compression rank (0 = no Q compression).
        qk_rope_head_dim: MLA decoupled rotary key dim (0 otherwise).
    """

    kind: AttentionKind
    num_heads: int
    qk_head_dim: int
    v_head_dim: int
    num_kv_heads: int = 0
    kv_lora_rank: int = 0
    q_lora_rank: int = 0
    qk_rope_head_dim: int = 0

    def __post_init__(self) -> None:
        if self.num_heads <= 0:
            raise ValueError(f"num_heads must be positive, got {self.num_heads}")
        if self.kind is AttentionKind.MLA:
            if self.kv_lora_rank <= 0:
                raise ValueError("MLA requires kv_lora_rank > 0")
        else:
            if self.num_kv_heads <= 0:
                raise ValueError(f"{self.kind.value} requires num_kv_heads > 0")
            if self.num_heads % self.num_kv_heads != 0:
                raise ValueError(
                    f"num_heads ({self.num_heads}) must be divisible by "
                    f"num_kv_heads ({self.num_kv_heads})"
                )
            if self.kind is AttentionKind.MQA and self.num_kv_heads != 1:
                raise ValueError("MQA requires num_kv_heads == 1")
            if self.kind is AttentionKind.MHA and self.num_kv_heads != self.num_heads:
                raise ValueError("MHA requires num_kv_heads == num_heads")

    @property
    def full_qk_head_dim(self) -> int:
        """Total per-head QK dim including the MLA rope part."""
        return self.qk_head_dim + self.qk_rope_head_dim


@dataclass(frozen=True)
class MoEConfig:
    """DeepSeekMoE configuration (Section 2.2 and Figure 1).

    Attributes:
        num_routed_experts: Total routed experts in each MoE layer.
        num_shared_experts: Always-active shared experts.
        experts_per_token: Routed experts activated per token (top-k).
        intermediate_size: Hidden width of each expert FFN.
        num_expert_groups: Groups for group-limited (node-limited)
            routing; experts are split evenly across groups and each
            group is deployed on one node (Section 4.3).
        max_groups_per_token: Maximum groups (nodes) a token may route
            to — DeepSeek-V3 uses 4 (Section 4.3).
    """

    num_routed_experts: int
    num_shared_experts: int
    experts_per_token: int
    intermediate_size: int
    num_expert_groups: int = 1
    max_groups_per_token: int = 0

    def __post_init__(self) -> None:
        if self.experts_per_token > self.num_routed_experts:
            raise ValueError(
                f"experts_per_token ({self.experts_per_token}) exceeds "
                f"num_routed_experts ({self.num_routed_experts})"
            )
        if self.num_expert_groups > 1:
            if self.num_routed_experts % self.num_expert_groups != 0:
                raise ValueError(
                    f"num_routed_experts ({self.num_routed_experts}) must divide "
                    f"evenly into {self.num_expert_groups} groups"
                )
            limit = self.max_groups_per_token or self.num_expert_groups
            if limit * self.experts_per_group < self.experts_per_token:
                raise ValueError(
                    "max_groups_per_token too small to place experts_per_token"
                )

    @property
    def experts_per_group(self) -> int:
        """Routed experts per group (per node under the §4.3 deployment)."""
        return self.num_routed_experts // self.num_expert_groups

    @property
    def active_experts_per_token(self) -> int:
        """Routed + shared experts each token activates."""
        return self.experts_per_token + self.num_shared_experts


@dataclass(frozen=True)
class ModelConfig:
    """Full transformer configuration.

    A dense model has ``moe=None`` and uses ``ffn_intermediate_size``
    in every layer; a DeepSeek-style MoE model uses dense FFNs in the
    first ``num_dense_layers`` layers and MoE layers elsewhere.

    Attributes:
        name: Display name.
        hidden_size: Residual-stream width.
        num_layers: Transformer layer count (main model, excluding MTP).
        vocab_size: Vocabulary size.
        attention: Attention configuration.
        ffn_intermediate_size: Dense FFN width (used by dense layers).
        moe: MoE configuration or None for dense models.
        num_dense_layers: Leading layers that use a dense FFN.
        num_mtp_modules: Multi-Token Prediction depth (Section 2.3.3);
            each MTP module is one extra lightweight layer.
        tie_embeddings: Whether the output head shares the embedding.
    """

    name: str
    hidden_size: int
    num_layers: int
    vocab_size: int
    attention: AttentionConfig
    ffn_intermediate_size: int
    moe: MoEConfig | None = None
    num_dense_layers: int = 0
    num_mtp_modules: int = 0
    tie_embeddings: bool = False

    def __post_init__(self) -> None:
        if self.moe is None and self.num_dense_layers not in (0, self.num_layers):
            raise ValueError("dense models must not set num_dense_layers")
        if self.moe is not None and self.num_dense_layers >= self.num_layers:
            raise ValueError("num_dense_layers must leave at least one MoE layer")

    @property
    def is_moe(self) -> bool:
        """True when the model has MoE layers."""
        return self.moe is not None

    @property
    def num_moe_layers(self) -> int:
        """Number of MoE layers in the main model."""
        if self.moe is None:
            return 0
        return self.num_layers - self.num_dense_layers

    def scaled(self, name: str, **overrides: object) -> "ModelConfig":
        """Return a copy with fields overridden (for ablations/tests)."""
        return replace(self, name=name, **overrides)  # type: ignore[arg-type]


# --- Published model presets -------------------------------------------------

DEEPSEEK_V3 = ModelConfig(
    name="DeepSeek-V3",
    hidden_size=7168,
    num_layers=61,
    vocab_size=129280,
    attention=AttentionConfig(
        kind=AttentionKind.MLA,
        num_heads=128,
        qk_head_dim=128,
        v_head_dim=128,
        kv_lora_rank=512,
        q_lora_rank=1536,
        qk_rope_head_dim=64,
    ),
    ffn_intermediate_size=18432,
    moe=MoEConfig(
        num_routed_experts=256,
        num_shared_experts=1,
        experts_per_token=8,
        intermediate_size=2048,
        num_expert_groups=8,
        max_groups_per_token=4,
    ),
    num_dense_layers=3,
    num_mtp_modules=1,
)

DEEPSEEK_V2 = ModelConfig(
    name="DeepSeek-V2",
    hidden_size=5120,
    num_layers=60,
    vocab_size=102400,
    attention=AttentionConfig(
        kind=AttentionKind.MLA,
        num_heads=128,
        qk_head_dim=128,
        v_head_dim=128,
        kv_lora_rank=512,
        q_lora_rank=1536,
        qk_rope_head_dim=64,
    ),
    ffn_intermediate_size=12288,
    moe=MoEConfig(
        num_routed_experts=160,
        num_shared_experts=2,
        experts_per_token=6,
        intermediate_size=1536,
        num_expert_groups=8,
        max_groups_per_token=3,
    ),
    num_dense_layers=1,
)

QWEN25_72B = ModelConfig(
    name="Qwen-2.5 72B",
    hidden_size=8192,
    num_layers=80,
    vocab_size=152064,
    attention=AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=64,
        qk_head_dim=128,
        v_head_dim=128,
        num_kv_heads=8,
    ),
    ffn_intermediate_size=29568,
)

LLAMA31_405B = ModelConfig(
    name="LLaMA-3.1 405B",
    hidden_size=16384,
    num_layers=126,
    vocab_size=128256,
    attention=AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=128,
        qk_head_dim=128,
        v_head_dim=128,
        num_kv_heads=8,
    ),
    ffn_intermediate_size=53248,
)

# A 70B-class dense model of the kind Section 2.2.2 compares against for
# local deployment ("dense models of similar capability, e.g. 70B").
LLAMA31_70B = ModelConfig(
    name="LLaMA-3.1 70B",
    hidden_size=8192,
    num_layers=80,
    vocab_size=128256,
    attention=AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=64,
        qk_head_dim=128,
        v_head_dim=128,
        num_kv_heads=8,
    ),
    ffn_intermediate_size=28672,
)


# --- Tiny presets for tests and the §2.4 validation pipeline -----------------

TINY_MLA_MOE = ModelConfig(
    name="tiny-mla-moe",
    hidden_size=64,
    num_layers=4,
    vocab_size=256,
    attention=AttentionConfig(
        kind=AttentionKind.MLA,
        num_heads=4,
        qk_head_dim=16,
        v_head_dim=16,
        kv_lora_rank=16,
        q_lora_rank=32,
        qk_rope_head_dim=8,
    ),
    ffn_intermediate_size=128,
    moe=MoEConfig(
        num_routed_experts=8,
        num_shared_experts=1,
        experts_per_token=2,
        intermediate_size=32,
        num_expert_groups=4,
        max_groups_per_token=2,
    ),
    num_dense_layers=1,
    num_mtp_modules=1,
)

TINY_DENSE_GQA = ModelConfig(
    name="tiny-dense-gqa",
    hidden_size=64,
    num_layers=4,
    vocab_size=256,
    attention=AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=8,
        qk_head_dim=8,
        v_head_dim=8,
        num_kv_heads=2,
    ),
    ffn_intermediate_size=192,
)

MODEL_CATALOG: dict[str, ModelConfig] = {
    "deepseek-v3": DEEPSEEK_V3,
    "deepseek-v2": DEEPSEEK_V2,
    "qwen2.5-72b": QWEN25_72B,
    "llama3.1-405b": LLAMA31_405B,
    "llama3.1-70b": LLAMA31_70B,
    "tiny-mla-moe": TINY_MLA_MOE,
    "tiny-dense-gqa": TINY_DENSE_GQA,
}
