"""Setup shim enabling legacy editable installs on offline hosts without the
``wheel`` package (PEP 660 editable wheels require it)."""

from setuptools import setup

setup()
