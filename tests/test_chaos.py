"""Supervised sweep execution and the deterministic self-chaos harness.

The headline invariant: a grid whose points SIGKILL their own worker,
hang past ``timeout_s``, raise, or run slow completes without wedging,
and its final report is byte-identical at ``workers=1`` and
``workers=4`` and — for every non-quarantined point — identical to the
same grid run chaos-free.
"""

from __future__ import annotations

import os
import signal
import subprocess
import time

import pytest

from repro.chaos import (
    CHAOS_MODES,
    ChaosPolicy,
    assert_chaos_invariant,
    chaos_points,
    chaos_spec,
    reference_spec,
)
from repro.sweep import (
    PointQuarantined,
    SupervisorPolicy,
    SweepCache,
    SweepInterrupted,
    SweepSpec,
    current_attempt,
    register_target,
    retry_delay_s,
    run_sweep,
)

FAST_POLICY = SupervisorPolicy(
    timeout_s=2.0, max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.05
)


@register_target("chaos-test-flaky")
def _flaky(config: dict, seed: int) -> dict:
    """Misbehaves per config on early attempts, then computes honestly."""
    if current_attempt() <= config.get("fail_attempts", 0):
        mode = config.get("mode", "raise")
        if mode == "raise":
            raise RuntimeError("injected")
        if mode == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        if mode == "hang":
            time.sleep(600)
    return {"doubled": config["x"] * 2, "seed": seed}


def _points(*specs: tuple[str, int]) -> list[dict]:
    return [
        {"x": i, "mode": mode, "fail_attempts": fails}
        for i, (mode, fails) in enumerate(specs)
    ]


# ---------------------------------------------------------------------------
# SupervisorPolicy / retry scheduling
# ---------------------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        SupervisorPolicy(timeout_s=0.0)
    with pytest.raises(ValueError):
        SupervisorPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        SupervisorPolicy(backoff_base_s=-1.0)


def test_retry_delay_deterministic_and_bounded():
    policy = SupervisorPolicy(backoff_base_s=0.1, backoff_cap_s=1.0)
    delays = [retry_delay_s(policy, 1234, attempt) for attempt in (2, 3, 4, 5, 6)]
    # Pure function of (policy, point seed, attempt).
    assert delays == [retry_delay_s(policy, 1234, a) for a in (2, 3, 4, 5, 6)]
    # Jitter keeps every delay within [base/2, cap].
    assert all(0.05 <= d <= 1.0 for d in delays)
    # A different point spreads differently (content-derived jitter).
    assert delays != [retry_delay_s(policy, 99, a) for a in (2, 3, 4, 5, 6)]


def test_current_attempt_defaults_to_one():
    assert current_attempt() == 1


# ---------------------------------------------------------------------------
# Supervised execution: recovery, quarantine, determinism
# ---------------------------------------------------------------------------


def test_supervisor_recovers_raise_kill_and_hang():
    spec = SweepSpec(
        target="chaos-test-flaky",
        points=_points(("raise", 1), ("kill", 1), ("hang", 1), ("raise", 0)),
        seed=5,
    )
    policy = SupervisorPolicy(
        timeout_s=0.5, max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.05
    )
    result = run_sweep(spec, workers=4, strict=False, supervise=policy)
    assert result.errors == 0
    assert [p.result["doubled"] for p in result.points] == [0, 2, 4, 6]


def test_supervised_report_worker_count_independent():
    spec = SweepSpec(
        target="chaos-test-flaky",
        points=_points(("raise", 1), ("kill", 1), ("raise", 99), ("raise", 0)),
        seed=5,
    )
    serial = run_sweep(spec, workers=1, strict=False, supervise=FAST_POLICY)
    parallel = run_sweep(spec, workers=4, strict=False, supervise=FAST_POLICY)
    assert serial.to_report_json() == parallel.to_report_json()


def test_quarantine_record_structure_and_no_cache(tmp_path):
    spec = SweepSpec(
        target="chaos-test-flaky", points=_points(("raise", 99)), seed=5
    )
    cache = SweepCache(tmp_path / "cache")
    result = run_sweep(
        spec, workers=1, strict=False, supervise=FAST_POLICY, cache=cache
    )
    (point,) = result.points
    assert point.result is None
    assert point.error["type"] == "PointQuarantined"
    assert point.error["attempts"] == FAST_POLICY.max_attempts
    assert [f["type"] for f in point.error["failures"]] == ["RuntimeError"] * 3
    assert [f["attempt"] for f in point.error["failures"]] == [1, 2, 3]
    # Poison never lands in the cache: a re-run retries it.
    assert len(cache) == 0


def test_strict_supervised_raises_point_quarantined():
    spec = SweepSpec(
        target="chaos-test-flaky", points=_points(("kill", 99)), seed=5
    )
    with pytest.raises(PointQuarantined) as excinfo:
        run_sweep(spec, workers=1, strict=True, supervise=FAST_POLICY)
    assert excinfo.value.record["type"] == "PointQuarantined"
    assert {f["type"] for f in excinfo.value.record["failures"]} == {"WorkerDied"}


def test_timeout_failures_are_recorded_as_point_timeout():
    spec = SweepSpec(
        target="chaos-test-flaky", points=_points(("hang", 99)), seed=5
    )
    policy = SupervisorPolicy(
        timeout_s=0.2, max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02
    )
    result = run_sweep(spec, workers=1, strict=False, supervise=policy)
    (point,) = result.points
    assert {f["type"] for f in point.error["failures"]} == {"PointTimeout"}


def test_supervisor_metrics_counters():
    from repro.obs import MetricsRegistry

    registry = MetricsRegistry()
    spec = SweepSpec(
        target="chaos-test-flaky",
        points=_points(("raise", 1), ("kill", 99)),
        seed=5,
    )
    run_sweep(
        spec, workers=2, strict=False, supervise=FAST_POLICY, metrics=registry
    )
    snapshot = registry.snapshot()
    assert snapshot["sweep.retries"] >= 1
    assert snapshot["sweep.worker_deaths"] >= 1
    assert snapshot["sweep.quarantined"] == 1


def test_supervised_interrupt_leaves_no_orphans():
    spec = SweepSpec(
        target="chaos-test-flaky",
        points=_points(("hang", 99), ("hang", 99)),
        seed=5,
    )
    ticks = {"n": 0}

    def interrupt() -> bool:
        ticks["n"] += 1
        return ticks["n"] > 5

    with pytest.raises(SweepInterrupted):
        run_sweep(
            spec,
            workers=2,
            strict=False,
            supervise=SupervisorPolicy(timeout_s=60.0, max_attempts=1),
            interrupt=interrupt,
        )
    children = subprocess.run(
        ["ps", "--ppid", str(os.getpid()), "-o", "comm="],
        capture_output=True,
        text=True,
    ).stdout.split()
    assert children == ["ps"]  # only the ps probe itself


def test_supervised_cache_resume(tmp_path):
    """Interrupting a supervised sweep loses nothing already settled."""
    cache = SweepCache(tmp_path / "cache")
    spec = SweepSpec(
        target="chaos-test-flaky",
        points=_points(("raise", 0), ("raise", 0), ("raise", 0)),
        seed=5,
    )
    cold = run_sweep(spec, workers=1, strict=False, supervise=FAST_POLICY, cache=cache)
    assert cold.evaluated == 3 and len(cache) == 3
    warm = run_sweep(spec, workers=1, strict=False, supervise=FAST_POLICY, cache=cache)
    assert warm.evaluated == 0 and warm.cache_hits == 3
    assert cold.to_report_json() == warm.to_report_json()


# ---------------------------------------------------------------------------
# The chaos harness
# ---------------------------------------------------------------------------


@register_target("chaos-test-inner")
def _inner(config: dict, seed: int) -> dict:
    return {"y": config["y"] * 10, "seed": seed}


INNER_CONFIGS = [{"y": i} for i in range(8)]


def test_chaos_assignment_is_seeded_and_deterministic():
    policy = ChaosPolicy(rate=0.5)
    once = chaos_points("chaos-test-inner", INNER_CONFIGS, seed=7, policy=policy)
    again = chaos_points("chaos-test-inner", INNER_CONFIGS, seed=7, policy=policy)
    assert once == again
    other = chaos_points("chaos-test-inner", INNER_CONFIGS, seed=8, policy=policy)
    assert [p["chaos_mode"] for p in once] != [p["chaos_mode"] for p in other]
    assert all(p["chaos_mode"] in CHAOS_MODES for p in once)
    # rate=1 sabotages everything; rate=0 nothing.
    all_on = chaos_points(
        "chaos-test-inner", INNER_CONFIGS, seed=7, policy=ChaosPolicy(rate=1.0)
    )
    assert all(p["chaos_mode"] != "none" for p in all_on)
    all_off = chaos_points(
        "chaos-test-inner", INNER_CONFIGS, seed=7, policy=ChaosPolicy(rate=0.0)
    )
    assert all(p["chaos_mode"] == "none" for p in all_off)


def test_chaos_policy_validation():
    with pytest.raises(ValueError):
        ChaosPolicy(modes=("none",))
    with pytest.raises(ValueError):
        ChaosPolicy(rate=1.5)
    with pytest.raises(ValueError):
        ChaosPolicy(attempts=0)


def test_reference_spec_unwraps_the_inner_grid():
    spec = chaos_spec(
        "chaos-test-inner", INNER_CONFIGS, seed=7, policy=ChaosPolicy()
    )
    ref = reference_spec(spec)
    assert ref.target == "chaos-test-inner"
    assert list(ref.points) == INNER_CONFIGS
    assert ref.seed == spec.seed
    with pytest.raises(ValueError):
        reference_spec(ref)  # not a chaos spec


def test_chaos_invariant_kill_hang_raise_slow():
    """The acceptance-criteria invariant, on a fast synthetic target."""
    spec = chaos_spec(
        "chaos-test-inner",
        INNER_CONFIGS,
        seed=21,
        policy=ChaosPolicy(rate=0.8, slow_s=0.05, attempts=1),
    )
    modes = {p["chaos_mode"] for p in spec.points}
    assert len(modes) >= 3  # the seed exercises a real mix
    policy = SupervisorPolicy(
        timeout_s=1.0, max_attempts=3, backoff_base_s=0.01, backoff_cap_s=0.05
    )
    parallel = run_sweep(spec, workers=4, strict=False, supervise=policy)
    serial = run_sweep(spec, workers=1, strict=False, supervise=policy)
    assert parallel.to_report_json() == serial.to_report_json()
    assert parallel.errors == 0  # attempts=1 < max_attempts: all converged
    reference = run_sweep(reference_spec(spec), workers=2)
    assert_chaos_invariant(parallel, reference)
    assert_chaos_invariant(serial, reference)


def test_chaos_poison_points_quarantine_cleanly():
    """Sabotage beyond max_attempts: hostile points quarantine, honest
    points still match the reference exactly."""
    spec = chaos_spec(
        "chaos-test-inner",
        INNER_CONFIGS,
        seed=21,
        policy=ChaosPolicy(rate=0.5, attempts=99, modes=("kill", "raise")),
    )
    policy = SupervisorPolicy(
        timeout_s=1.0, max_attempts=2, backoff_base_s=0.01, backoff_cap_s=0.02
    )
    result = run_sweep(spec, workers=4, strict=False, supervise=policy)
    sabotaged = sum(1 for p in spec.points if p["chaos_mode"] != "none")
    assert result.errors == sabotaged > 0
    assert all(
        p.error["type"] == "PointQuarantined"
        for p in result.points
        if p.error is not None
    )
    reference = run_sweep(reference_spec(spec), workers=2)
    assert_chaos_invariant(result, reference)  # skips quarantined points


def test_chaos_invariant_detects_divergence():
    spec = chaos_spec(
        "chaos-test-inner", INNER_CONFIGS[:2], seed=3, policy=ChaosPolicy(rate=0.0)
    )
    result = run_sweep(
        spec, workers=1, strict=False, supervise=SupervisorPolicy(timeout_s=5.0)
    )
    reference = run_sweep(reference_spec(spec), workers=1)
    tampered = reference.points[0]
    object.__setattr__(tampered, "result", {"y": -1, "seed": tampered.seed})
    with pytest.raises(AssertionError):
        assert_chaos_invariant(result, reference)


def test_chaos_target_resolves_lazily():
    """Naming 'chaos' without importing repro.chaos works (CLI/service)."""
    from repro.sweep.targets import get_target

    assert callable(get_target("chaos"))
