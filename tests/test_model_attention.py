"""Attention kernels: correctness and the MLA caching equivalence."""

import numpy as np
import pytest

from repro.model import (
    TINY_MLA_MOE,
    AttentionConfig,
    AttentionKind,
    MultiHeadAttention,
    MultiHeadLatentAttention,
    apply_rope,
    build_attention,
    causal_attention,
    softmax,
)

RNG = np.random.default_rng


def _mla_cfg(**overrides):
    base = dict(
        kind=AttentionKind.MLA,
        num_heads=4,
        qk_head_dim=16,
        v_head_dim=16,
        kv_lora_rank=24,
        q_lora_rank=32,
        qk_rope_head_dim=8,
    )
    base.update(overrides)
    return AttentionConfig(**base)


def _gqa_cfg(num_heads=8, num_kv_heads=2):
    return AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=num_heads,
        qk_head_dim=16,
        v_head_dim=16,
        num_kv_heads=num_kv_heads,
    )


def test_softmax_rows_sum_to_one():
    x = RNG(0).normal(size=(5, 9))
    assert np.allclose(softmax(x).sum(axis=-1), 1.0)


def test_softmax_is_shift_invariant():
    x = RNG(1).normal(size=(3, 4))
    assert np.allclose(softmax(x), softmax(x + 100.0))


def test_apply_rope_preserves_norm():
    x = RNG(2).normal(size=(2, 3, 10, 16)).astype(np.float32)
    rotated = apply_rope(x, np.arange(10))
    # Rotations preserve the norm of each (even, odd) pair.
    assert np.allclose(np.linalg.norm(rotated, axis=-1), np.linalg.norm(x, axis=-1), atol=1e-5)


def test_apply_rope_position_zero_is_identity():
    x = RNG(3).normal(size=(1, 1, 1, 8)).astype(np.float32)
    assert np.allclose(apply_rope(x, np.array([0])), x, atol=1e-6)


def test_apply_rope_is_relative():
    # <rope(q,m), rope(k,n)> depends only on m-n.
    q = RNG(4).normal(size=(8,)).astype(np.float32)
    k = RNG(5).normal(size=(8,)).astype(np.float32)

    def dot(m, n):
        qr = apply_rope(q[None], np.array([m]))[0]
        kr = apply_rope(k[None], np.array([n]))[0]
        return float(qr @ kr)

    assert dot(3, 1) == pytest.approx(dot(10, 8), abs=1e-4)


def test_apply_rope_rejects_odd_dim():
    with pytest.raises(ValueError):
        apply_rope(np.zeros((1, 1, 7)), np.arange(1))


def test_causal_attention_masks_future():
    q = RNG(6).normal(size=(1, 1, 4, 8))
    k = RNG(7).normal(size=(1, 1, 4, 8))
    v = np.zeros((1, 1, 4, 8))
    v[0, 0, 3] = 1.0  # only the last key position carries signal
    out = causal_attention(q, k, v, query_offset=0, scale=1.0)
    # Queries 0..2 cannot see key 3, so their output must be zero.
    assert np.allclose(out[0, 0, :3], 0.0)
    assert not np.allclose(out[0, 0, 3], 0.0)


def test_causal_attention_offset_allows_history():
    q = RNG(8).normal(size=(1, 2, 1, 8))
    k = RNG(9).normal(size=(1, 2, 6, 8))
    v = RNG(10).normal(size=(1, 2, 6, 8))
    # A single query at absolute position 5 sees all 6 keys.
    full = causal_attention(q, k, v, query_offset=5, scale=0.3)
    scores = np.einsum("bhqd,bhkd->bhqk", q, k) * 0.3
    expect = np.einsum("bhqk,bhkv->bhqv", softmax(scores), v)
    assert np.allclose(full, expect, atol=1e-6)


def test_mla_absorbed_equals_naive():
    """The latent-cache execution path must match full decompression."""
    cfg = _mla_cfg()
    attn = MultiHeadLatentAttention(cfg, hidden_size=32, rng=RNG(11))
    x = RNG(12).normal(size=(2, 9, 32)).astype(np.float32)
    out_a = attn(x, attn.make_cache(2), absorbed=True)
    out_n = attn(x, attn.make_cache(2), absorbed=False)
    assert np.allclose(out_a, out_n, atol=1e-4)


def test_mla_absorbed_equals_naive_without_q_compression():
    cfg = _mla_cfg(q_lora_rank=0)
    attn = MultiHeadLatentAttention(cfg, hidden_size=32, rng=RNG(13))
    x = RNG(14).normal(size=(1, 6, 32)).astype(np.float32)
    assert np.allclose(
        attn(x, attn.make_cache(1), absorbed=True),
        attn(x, attn.make_cache(1), absorbed=False),
        atol=1e-4,
    )


def test_mla_incremental_decode_matches_prefill():
    """Token-by-token decoding with the latent cache == one-shot prefill."""
    cfg = _mla_cfg()
    attn = MultiHeadLatentAttention(cfg, hidden_size=32, rng=RNG(15))
    x = RNG(16).normal(size=(1, 7, 32)).astype(np.float32)
    full = attn(x, attn.make_cache(1))
    cache = attn.make_cache(1)
    steps = [attn(x[:, t : t + 1], cache) for t in range(7)]
    assert np.allclose(np.concatenate(steps, axis=1), full, atol=1e-4)


def test_mla_cache_holds_only_latent():
    cfg = _mla_cfg()
    attn = MultiHeadLatentAttention(cfg, hidden_size=32, rng=RNG(17))
    cache = attn.make_cache(1)
    attn(RNG(18).normal(size=(1, 5, 32)).astype(np.float32), cache)
    assert cache.latent.shape == (1, 5, cfg.kv_lora_rank)
    assert cache.rope_key.shape == (1, 5, cfg.qk_rope_head_dim)


def test_gqa_incremental_decode_matches_prefill():
    cfg = _gqa_cfg()
    attn = MultiHeadAttention(cfg, hidden_size=32, rng=RNG(19))
    x = RNG(20).normal(size=(2, 6, 32)).astype(np.float32)
    full = attn(x, attn.make_cache(2))
    cache = attn.make_cache(2)
    steps = [attn(x[:, t : t + 1], cache) for t in range(6)]
    assert np.allclose(np.concatenate(steps, axis=1), full, atol=1e-4)


def test_gqa_with_all_heads_equals_mha_shape():
    mha = AttentionConfig(
        kind=AttentionKind.MHA, num_heads=4, qk_head_dim=8, v_head_dim=8, num_kv_heads=4
    )
    attn = MultiHeadAttention(mha, hidden_size=16, rng=RNG(21))
    out = attn(RNG(22).normal(size=(1, 3, 16)).astype(np.float32), attn.make_cache(1))
    assert out.shape == (1, 3, 16)


def test_mqa_runs():
    cfg = AttentionConfig(
        kind=AttentionKind.MQA, num_heads=4, qk_head_dim=8, v_head_dim=8, num_kv_heads=1
    )
    attn = MultiHeadAttention(cfg, hidden_size=16, rng=RNG(23))
    out = attn(RNG(24).normal(size=(1, 4, 16)).astype(np.float32), attn.make_cache(1))
    assert out.shape == (1, 4, 16)
    assert attn.make_cache(1)._keys.shape[1] == 1


def test_build_attention_dispatch():
    assert isinstance(
        build_attention(_mla_cfg(), 32, RNG(0)), MultiHeadLatentAttention
    )
    assert isinstance(build_attention(_gqa_cfg(), 32, RNG(0)), MultiHeadAttention)


def test_wrong_class_for_config_raises():
    with pytest.raises(ValueError):
        MultiHeadAttention(_mla_cfg(), 32, RNG(0))
    with pytest.raises(ValueError):
        MultiHeadLatentAttention(_gqa_cfg(), 32, RNG(0))


def test_tiny_preset_attention_runs():
    cfg = TINY_MLA_MOE
    attn = build_attention(cfg.attention, cfg.hidden_size, RNG(25))
    x = RNG(26).normal(size=(1, 8, cfg.hidden_size)).astype(np.float32)
    out = attn(x, attn.make_cache(1))
    assert out.shape == x.shape
    assert np.all(np.isfinite(out))
