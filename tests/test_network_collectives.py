"""Collective traffic generation and the Figure 5/6 parity claims."""

import pytest

from repro.network import (
    RoutingPolicy,
    build_mpft_cluster,
    build_mrft_cluster,
    ft2_from_radix,
    ring_collective_flows,
    run_all_to_all,
    run_concurrent_rings,
)
from repro.network.collectives import pair_flows


def test_all_to_all_mpft_equals_mrft():
    """Figure 5/6: with PXN, MPFT and MRFT all-to-all are identical."""
    mpft = build_mpft_cluster(2)
    mrft = build_mrft_cluster(2)
    size = 1 << 20
    r1 = run_all_to_all(mpft, mpft.gpus(), size)
    r2 = run_all_to_all(mrft, mrft.gpus(), size)
    assert r1.time == pytest.approx(r2.time, rel=1e-6)
    assert r1.busbw == pytest.approx(r2.busbw, rel=1e-6)


def test_all_to_all_busbw_saturates_toward_nic():
    """Figure 5 shape: busbw decreases toward NIC saturation (~40GB/s)."""
    results = []
    for nodes in (2, 4, 8):
        c = build_mpft_cluster(nodes)
        results.append(run_all_to_all(c, c.gpus(), 1 << 20).busbw)
    assert results[0] > results[1] > results[2]
    assert results[2] > 40e9  # still above NIC effective (NVLink share)


def test_all_to_all_latency_dominates_small_messages():
    """Figure 6 shape: tiny messages cost ~latency, big ones ~bandwidth."""
    c = build_mpft_cluster(2)
    gpus = c.gpus()[:16]
    small = run_all_to_all(c, gpus, 64)
    large = run_all_to_all(c, gpus, 1 << 22)
    assert small.time < 50e-6
    assert large.time > 10 * small.time


def test_all_to_all_needs_two_ranks():
    c = build_mpft_cluster(2)
    with pytest.raises(ValueError):
        run_all_to_all(c, c.gpus()[:1], 64)


def test_pair_flows_same_node_nvlink():
    c = build_mpft_cluster(2)
    flows = pair_flows(c, "n0g0", "n0g3", 1e6)
    assert len(flows) == 1
    assert flows[0].path == ["n0g0", "n0/nvsw", "n0g3"]


def test_pair_flows_spread_modes():
    c = build_mpft_cluster(16)  # cross-leaf pairs have 8 spine paths
    adaptive = pair_flows(c, "n0g0", "n9g0", 8e6, spread="adaptive")
    ecmp = pair_flows(c, "n0g0", "n9g0", 8e6, spread="ecmp")
    first = pair_flows(c, "n0g0", "n9g0", 8e6, spread="first")
    assert len(adaptive) == 8
    assert sum(f.size for f in adaptive) == pytest.approx(8e6)
    assert len(ecmp) == 1 and ecmp[0].size == 8e6
    assert len(first) == 1
    with pytest.raises(ValueError):
        pair_flows(c, "n0g0", "n9g0", 8e6, spread="nope")


def test_ring_collective_volume():
    """Ring AllGather moves (N-1)/N x buffer per neighbour link."""
    topo = ft2_from_radix(8)
    ring = [f"h{i}" for i in range(4)]
    flows = ring_collective_flows(topo, ring, 4e6, RoutingPolicy.ECMP)
    assert len(flows) == 4
    for f in flows:
        assert f.size == pytest.approx(3e6)


def test_ring_needs_two_ranks():
    topo = ft2_from_radix(8)
    with pytest.raises(ValueError):
        ring_collective_flows(topo, ["h0"], 1e6, RoutingPolicy.ECMP)
    with pytest.raises(ValueError):
        run_concurrent_rings(topo, [], 1e6, RoutingPolicy.ECMP)


def test_adaptive_routing_beats_unlucky_ecmp():
    """Figure 8 shape: AR >= ECMP for concurrent rings; static (tuned)
    matches AR."""
    from repro.network import collision_free_static_table

    topo = ft2_from_radix(8)
    # Rings crossing leaf pairs; ECMP may hash several onto one spine.
    rings = [[f"h{i}", f"h{4 + i}", f"h{8 + i}", f"h{12 + i}"] for i in range(4)]
    buffer_bytes = 64e6
    ar = run_concurrent_rings(topo, rings, buffer_bytes, RoutingPolicy.ADAPTIVE)
    ecmp = run_concurrent_rings(topo, rings, buffer_bytes, RoutingPolicy.ECMP)
    pairs = [(r[i], r[(i + 1) % len(r)]) for r in rings for i in range(len(r))]
    table = collision_free_static_table(topo, pairs)
    static = run_concurrent_rings(
        topo, rings, buffer_bytes, RoutingPolicy.STATIC, static_table=table
    )
    assert ar.busbw >= ecmp.busbw * 0.999
    assert static.busbw == pytest.approx(ar.busbw, rel=0.05)


def test_collective_result_bandwidth_conventions():
    c = build_mpft_cluster(2)
    res = run_all_to_all(c, c.gpus()[:4], 1 << 20)
    assert res.busbw == pytest.approx(res.algbw * 3 / 4)
