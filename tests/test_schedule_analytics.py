"""Analytic schedule bubbles: orderings and limits."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.parallel import (
    ChunkCosts,
    analytic_1f1b_bubble,
    analytic_dualpipe_bubble,
    analytic_zb1p_bubble,
)

V3_COSTS = ChunkCosts(1.0, 1.76, 0.42)


def test_bubble_hierarchy_at_v3_ratios():
    """DualPipe < ZB1P < 1F1B — the DualPipe repo's comparison."""
    p = 16
    assert (
        analytic_dualpipe_bubble(p, V3_COSTS)
        < analytic_zb1p_bubble(p, V3_COSTS)
        < analytic_1f1b_bubble(p, V3_COSTS)
    )


def test_1f1b_bubble_formula():
    assert analytic_1f1b_bubble(8, V3_COSTS) == pytest.approx(7 * V3_COSTS.total)


def test_zb1p_bubble_formula():
    expected = 7 * (1.0 + 1.76 - 2 * 0.42)
    assert analytic_zb1p_bubble(8, V3_COSTS) == pytest.approx(expected)


def test_dualpipe_bubble_formula():
    # (P/2 - 1)(F&B + B - 3W) with F&B = F + B.
    expected = 3 * ((1.0 + 1.76) + 1.76 - 3 * 0.42)
    assert analytic_dualpipe_bubble(8, V3_COSTS) == pytest.approx(expected)


def test_bubbles_clamp_at_zero():
    heavy_w = ChunkCosts(1.0, 1.0, 5.0)
    assert analytic_zb1p_bubble(8, heavy_w) == 0.0
    assert analytic_dualpipe_bubble(8, heavy_w) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    p=st.sampled_from([2, 4, 8, 16, 32]),
    f=st.floats(0.1, 5.0),
    b=st.floats(0.1, 5.0),
    w=st.floats(0.01, 1.0),
)
def test_hierarchy_holds_generally(p, f, b, w):
    """For any non-degenerate chunk costs with W < F and W < B,
    the zero-bubble variants never exceed 1F1B's bubble."""
    costs = ChunkCosts(f, b, w)
    assert analytic_zb1p_bubble(p, costs) <= analytic_1f1b_bubble(p, costs) + 1e-12
    assert analytic_dualpipe_bubble(p, costs) <= analytic_1f1b_bubble(p, costs) + 1e-12
