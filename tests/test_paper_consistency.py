"""Cross-table consistency: the paper's numbers imply each other.

These tests document the arithmetic that links the paper's tables —
the strongest evidence that the reproduction models the same system
the authors measured.
"""

import pytest

from repro.core import H800
from repro.inference import DEEPSEEK_V3_INFERENCE, comm_time_per_stage, tpot_limit
from repro.model import (
    DEEPSEEK_V3,
    count_params,
    kv_cache_bytes_per_token,
    training_flops_per_token,
)
from repro.parallel import TrainingJobConfig, simulate_training_step


def test_table1_is_config_algebra():
    """70.272 KB = (512 latent + 64 rope) x 2 bytes x 61 layers."""
    attn = DEEPSEEK_V3.attention
    expected = (attn.kv_lora_rank + attn.qk_rope_head_dim) * 2 * DEEPSEEK_V3.num_layers
    assert kv_cache_bytes_per_token(DEEPSEEK_V3) == expected == 70272


def test_table2_consistent_with_table4():
    """Table 4's causal 385 TFLOPS at 19.93 s/step and GBS 15360x4096
    implies ~250 GFLOPS/token — exactly Table 2's V3 entry."""
    tokens_per_step = 15360 * 4096
    implied_gf = 385e12 * 2048 * 19.926 / tokens_per_step / 1e9
    ours = training_flops_per_token(DEEPSEEK_V3, 4096) / 1e9
    assert implied_gf == pytest.approx(250, rel=0.01)
    assert ours == pytest.approx(implied_gf, rel=0.02)


def test_table4_mfu_is_tflops_over_peak():
    """432/989 = 43.7% and 385/989 = 38.9% — the Table 4 MFU rows are
    exactly achieved-over-peak on the H800."""
    assert 432e12 / H800.bf16_flops == pytest.approx(0.4373, abs=0.001)
    assert 385e12 / H800.bf16_flops == pytest.approx(0.3894, abs=0.001)
    report = simulate_training_step(TrainingJobConfig())
    mfu = report.mfu
    assert mfu.mfu(True) == pytest.approx(
        mfu.tflops(True) * 1e12 / H800.bf16_flops, rel=1e-9
    )


def test_table4_tokens_per_day_is_step_arithmetic():
    """272.8 B/day = 15360 x 4096 tokens x 86400 / 19.926 s."""
    implied = 15360 * 4096 * 86400 / 19.926
    assert implied == pytest.approx(272.8e9, rel=0.001)


def test_sec232_dispatch_combine_split():
    """120.96 us = (1 + 2) bytes x 32 x 9 x 7000 / 50 GB/s, with
    dispatch:combine = 1:2 (FP8 vs BF16)."""
    cfg = DEEPSEEK_V3_INFERENCE
    total = comm_time_per_stage(cfg, 50e9)
    dispatch = cfg.dispatch_bytes / (cfg.dispatch_bytes + cfg.combine_bytes) * total
    assert total == pytest.approx(120.96e-6)
    assert dispatch == pytest.approx(40.32e-6)


def test_sec232_tpot_is_61_layers_of_2_stages():
    cfg = DEEPSEEK_V3_INFERENCE
    assert tpot_limit(cfg, 50e9) == pytest.approx(
        61 * 2 * comm_time_per_stage(cfg, 50e9)
    )


def test_sec43_factor9_matches_model_config():
    """§2.3.2's 'factor 9' is Table/Figure 1's top-8 + 1 shared."""
    moe = DEEPSEEK_V3.moe
    assert moe.experts_per_token + moe.num_shared_experts == 9
    assert DEEPSEEK_V3_INFERENCE.destinations_per_token == 9


def test_sec22_params_ratio_matches_narrative():
    """'671B ... nearly three times the size of V2 (236B)' and
    'activation per token at just 37B' vs V2's 21B."""
    from repro.model import DEEPSEEK_V2

    v3, v2 = count_params(DEEPSEEK_V3), count_params(DEEPSEEK_V2)
    assert v3.total_main / v2.total == pytest.approx(671 / 236, rel=0.03)
    assert v3.active / v2.active == pytest.approx(37 / 21, rel=0.1)


def test_sec43_bandwidth_ratio_drives_node_limit():
    """NVLink:IB effective = 160:40 = 4:1; capping a token at 4 nodes
    keeps per-token IB time <= intra-node forwarding capability."""
    from repro.core import H800_NODE

    ratio = H800_NODE.scale_up_to_scale_out_ratio
    assert ratio == pytest.approx(4.0)
    assert DEEPSEEK_V3.moe.max_groups_per_token == int(ratio)


def test_fig7_tokens_per_gpu_dispatch_volume():
    """Figure 7's 4096 tokens/GPU at hidden 7168 dispatches <= 4 node
    copies x 4096 x 7168 B ~ 118 MB of FP8 per GPU."""
    per_gpu_bytes = 4 * 4096 * 7168
    assert per_gpu_bytes / 40e9 == pytest.approx(2.94e-3, rel=0.01)
    # ... which matches the simulated ~2.8-2.9 ms dispatch stage time at
    # 128 GPUs (see EXPERIMENTS.md Figure 7).
