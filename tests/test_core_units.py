"""Unit-conversion helpers."""

import pytest

from repro.core import units


def test_binary_byte_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024**2
    assert units.GIB == 1024**3
    assert units.TIB == 1024**4


def test_decimal_byte_constants():
    assert units.KB == 1000
    assert units.GB == 10**9


def test_gbps_conversion_matches_paper_nic():
    # The paper treats a 400 Gbps CX7 NIC as 50 GB/s peak.
    assert units.gbps_to_bytes_per_s(400) == pytest.approx(50e9)


def test_bytes_to_kib():
    assert units.bytes_to_kib(70272) == pytest.approx(68.625)


def test_time_conversions_roundtrip():
    assert units.us_to_seconds(units.seconds_to_us(0.0123)) == pytest.approx(0.0123)
    assert units.seconds_to_ms(0.5) == pytest.approx(500.0)


def test_flops_conversions():
    assert units.flops_to_gflops(2.5e9) == pytest.approx(2.5)
    assert units.flops_to_tflops(989e12) == pytest.approx(989.0)


def test_fmt_bytes_picks_scale():
    assert units.fmt_bytes(512) == "512 B"
    assert "KB" in units.fmt_bytes(70272)
    assert "MB" in units.fmt_bytes(5 * units.MIB)
    assert "GB" in units.fmt_bytes(3 * units.GIB)


def test_fmt_time_picks_scale():
    assert "us" in units.fmt_time(120.96e-6)
    assert "ms" in units.fmt_time(14.76e-3)
    assert units.fmt_time(19.926).endswith("s")
