"""Smoke tests: every example script runs end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "70.272" in out
    assert "14.76 ms" in out


def test_design_cluster_network():
    out = _run("design_cluster_network.py", "2")
    assert "MPFT" in out and "MRFT" in out
    assert "connectivity 100%" in out


def test_plan_inference_deployment():
    out = _run("plan_inference_deployment.py")
    assert "node-limited" in out
    assert "dispatch" in out and "combine" in out
    assert "prefill pool" in out


@pytest.mark.slow
def test_validate_fp8_training_short():
    out = _run("validate_fp8_training.py", "10")
    assert "relative loss gap" in out


@pytest.mark.slow
def test_train_and_speculate_short():
    out = _run("train_and_speculate.py", "10")
    assert "lossless vs greedy: True" in out
    assert "acceptance" in out


def test_training_budget():
    out = _run("training_budget.py", "1.0")
    assert "GPU-hours" in out
    assert "goodput" in out
