"""Per-GPU training memory model (§4.2 DualPipe memory balance)."""

import pytest

from repro.model import DEEPSEEK_V3, TINY_MLA_MOE
from repro.parallel import (
    ShardingPlan,
    activation_bytes_per_microbatch,
    activation_imbalance,
    fits,
    inflight_microbatches,
    params_per_gpu,
    training_memory_per_gpu,
)

HBM_80GB = 80 * 1024**3


def test_v3_production_plan_fits_80gb():
    """The V3 sharding (PP16, EP64, FP8 weights) fits the H800."""
    plan = ShardingPlan()
    breakdown = training_memory_per_gpu(DEEPSEEK_V3, plan)
    assert breakdown.total < 0.6 * HBM_80GB  # headroom for buffers/comm
    assert fits(DEEPSEEK_V3, plan, HBM_80GB)


def test_unsharded_model_does_not_fit():
    plan = ShardingPlan(pipeline_parallel=2, expert_parallel=1, optimizer_shards=1)
    assert not fits(DEEPSEEK_V3, plan, HBM_80GB)


def test_params_per_gpu_shrinks_with_ep():
    small = params_per_gpu(DEEPSEEK_V3, ShardingPlan(expert_parallel=64))
    big = params_per_gpu(DEEPSEEK_V3, ShardingPlan(expert_parallel=8))
    assert small < big


def test_params_per_gpu_shrinks_with_pp():
    deep = params_per_gpu(DEEPSEEK_V3, ShardingPlan(pipeline_parallel=16))
    shallow = params_per_gpu(DEEPSEEK_V3, ShardingPlan(pipeline_parallel=4))
    assert deep < shallow


def test_dualpipe_balances_activations_1f1b_does_not():
    """The §4.2 claim: DualPipe 'balances memory usage across GPUs'."""
    assert activation_imbalance("dualpipe", 16) == 1.0
    assert activation_imbalance("1f1b", 16) == 16.0


def test_inflight_profiles():
    assert inflight_microbatches("1f1b", 8, 0) == 8
    assert inflight_microbatches("1f1b", 8, 7) == 1
    assert inflight_microbatches("dualpipe", 8, 0) == inflight_microbatches(
        "dualpipe", 8, 7
    )
    with pytest.raises(ValueError):
        inflight_microbatches("1f1b", 8, 8)
    with pytest.raises(ValueError):
        inflight_microbatches("gpipe", 8, 0)


def test_activation_bytes_scale_with_tokens():
    small = activation_bytes_per_microbatch(TINY_MLA_MOE, ShardingPlan(microbatch_tokens=128))
    large = activation_bytes_per_microbatch(TINY_MLA_MOE, ShardingPlan(microbatch_tokens=4096))
    assert large == pytest.approx(32 * small)


def test_memory_breakdown_components():
    plan = ShardingPlan()
    b = training_memory_per_gpu(DEEPSEEK_V3, plan)
    assert b.total == pytest.approx(
        b.weights + b.gradients + b.master_and_optimizer + b.activations
    )
    # FP8 weights are half the BF16 gradient bytes for the same params.
    assert b.gradients == pytest.approx(2 * b.weights)


def test_bf16_weights_double_weight_memory():
    plan = ShardingPlan()
    fp8 = training_memory_per_gpu(DEEPSEEK_V3, plan, weight_bytes=1)
    bf16 = training_memory_per_gpu(DEEPSEEK_V3, plan, weight_bytes=2)
    assert bf16.weights == pytest.approx(2 * fp8.weights)


def test_plan_validation():
    with pytest.raises(ValueError):
        ShardingPlan(pipeline_parallel=0)
