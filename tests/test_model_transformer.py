"""Assembled numpy transformer: trunk, caches, MTP, generation."""

import numpy as np
import pytest

from repro.model import TINY_DENSE_GQA, TINY_MLA_MOE, RMSNorm, Transformer

RNG = np.random.default_rng


def test_rmsnorm_unit_scale():
    norm = RMSNorm(8)
    x = RNG(0).normal(size=(2, 3, 8)).astype(np.float32) * 10
    out = norm(x)
    rms = np.sqrt(np.mean(out**2, axis=-1))
    assert np.allclose(rms, 1.0, atol=1e-3)


def test_forward_logit_shape():
    model = Transformer(TINY_MLA_MOE, seed=0)
    tokens = RNG(1).integers(0, 256, size=(2, 6))
    logits = model.forward(tokens, model.make_caches(2))
    assert logits.shape == (2, 6, 256)
    assert np.all(np.isfinite(logits))


def test_layer_moe_dense_split():
    model = Transformer(TINY_MLA_MOE, seed=0)
    # First num_dense_layers are dense; the rest MoE.
    flags = [layer.is_moe for layer in model.layers]
    assert flags == [False, True, True, True]


def test_dense_model_has_no_moe_layers():
    model = Transformer(TINY_DENSE_GQA, seed=0)
    assert not any(layer.is_moe for layer in model.layers)


def test_incremental_forward_matches_prefill():
    model = Transformer(TINY_DENSE_GQA, seed=1)
    tokens = RNG(2).integers(0, 256, size=(1, 5))
    full = model.forward(tokens, model.make_caches(1))
    caches = model.make_caches(1)
    steps = [model.forward(tokens[:, t : t + 1], caches) for t in range(5)]
    assert np.allclose(np.concatenate(steps, axis=1), full, atol=1e-4)


def test_incremental_forward_matches_prefill_mla_moe():
    model = Transformer(TINY_MLA_MOE, seed=2)
    tokens = RNG(3).integers(0, 256, size=(1, 4))
    full = model.forward(tokens, model.make_caches(1))
    caches = model.make_caches(1)
    steps = [model.forward(tokens[:, t : t + 1], caches) for t in range(4)]
    assert np.allclose(np.concatenate(steps, axis=1), full, atol=1e-4)


def test_make_caches_includes_mtp():
    model = Transformer(TINY_MLA_MOE, seed=0)
    caches = model.make_caches(1)
    assert len(caches) == TINY_MLA_MOE.num_layers + TINY_MLA_MOE.num_mtp_modules


def test_mtp_draft_logits_shape():
    model = Transformer(TINY_MLA_MOE, seed=0)
    tokens = RNG(4).integers(0, 256, size=(1, 5))
    caches = model.make_caches(1)
    hidden = model.forward_hidden(tokens, caches)
    draft = model.mtp_draft_logits(hidden, tokens, caches)
    assert draft.shape == (1, 5, 256)
    assert np.all(np.isfinite(draft))


def test_greedy_generate_deterministic():
    model = Transformer(TINY_DENSE_GQA, seed=3)
    prompt = RNG(5).integers(0, 256, size=(1, 4))
    a = model.greedy_generate(prompt, 6)
    b = model.greedy_generate(prompt, 6)
    assert a.shape == (1, 6)
    assert np.array_equal(a, b)


def test_greedy_generate_batched():
    model = Transformer(TINY_DENSE_GQA, seed=4)
    prompt = RNG(6).integers(0, 256, size=(3, 4))
    out = model.greedy_generate(prompt, 5)
    assert out.shape == (3, 5)
    # Each batch row must match its solo generation (cache isolation).
    for i in range(3):
        solo = model.greedy_generate(prompt[i : i + 1], 5)
        assert np.array_equal(out[i : i + 1], solo)


def test_tied_embeddings_share_storage():
    cfg = TINY_DENSE_GQA.scaled("tied", tie_embeddings=True)
    model = Transformer(cfg, seed=0)
    assert model.lm_head.base is model.embedding
