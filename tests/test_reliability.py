"""Reliability: failure scaling, SDC detection, network failover (§6.1)."""

import numpy as np
import pytest

from repro.network import build_mpft_cluster, build_mrft_cluster
from repro.reliability import (
    ComponentReliability,
    assess_impact,
    cluster_mtbf,
    compute_checksum,
    corrupted_blocks,
    detection_rate,
    fail_entire_plane,
    fail_link,
    fail_switch,
    flip_bits,
    freivalds_check,
    goodput_fraction,
    goodput_vs_scale,
    hosts_reachable,
    optimal_checkpoint_interval,
    plane_switches,
    random_bit_flips,
)

RNG = np.random.default_rng


def test_cluster_mtbf_scales_inversely():
    """§6.1.1: failure probability grows proportionally with size."""
    assert cluster_mtbf(256) == pytest.approx(cluster_mtbf(1) / 256)
    with pytest.raises(ValueError):
        cluster_mtbf(0)


def test_component_rates_add():
    rel = ComponentReliability()
    assert rel.node_failure_rate(8, 8) > 1.0 / rel.node_mtbf


def test_optimal_interval_young_daly():
    assert optimal_checkpoint_interval(100.0, 20000.0) == pytest.approx(2000.0)
    with pytest.raises(ValueError):
        optimal_checkpoint_interval(0.0, 100.0)


def test_goodput_declines_with_scale():
    rows = goodput_vs_scale([16, 256, 2048])
    goodputs = [r.goodput for r in rows]
    assert goodputs == sorted(goodputs, reverse=True)
    assert all(0 < g < 1 for g in goodputs)


def test_goodput_validation():
    with pytest.raises(ValueError):
        goodput_fraction(100.0, 10.0, 1000.0, interval=50.0)
    with pytest.raises(ValueError):
        goodput_fraction(100.0, -1.0, 1000.0)


# --- SDC ---------------------------------------------------------------------


def test_flip_bits_roundtrip():
    x = RNG(0).normal(size=16).astype(np.float32)
    flipped = flip_bits(x, [(3, 31)])  # sign flip
    assert flipped[3] == -x[3]
    assert np.array_equal(np.delete(flipped, 3), np.delete(x, 3))
    again = flip_bits(flipped, [(3, 31)])
    assert np.array_equal(again, x)


def test_flip_bits_validation():
    with pytest.raises(ValueError):
        flip_bits(np.zeros(4, np.float32), [(0, 32)])


def test_random_bit_flips_count():
    x = np.zeros(100, np.float32)
    corrupted, flips = random_bit_flips(x, 5, RNG(1))
    assert len(flips) == 5
    assert not np.array_equal(corrupted, x) or all(b == 31 and x[i] == 0 for i, b in flips)


def test_checksum_detects_and_localizes_corruption():
    x = RNG(2).normal(size=10_000).astype(np.float32)
    reference = compute_checksum(x, block_size=512)
    corrupted = flip_bits(x, [(2048, 13)])
    bad = corrupted_blocks(corrupted, reference)
    assert list(bad) == [2048 // 512]
    assert corrupted_blocks(x, reference).size == 0


def test_checksum_validation():
    with pytest.raises(ValueError):
        compute_checksum(np.zeros(4, np.float32), block_size=0)


def test_freivalds_accepts_correct_product():
    rng = RNG(3)
    a = rng.normal(size=(32, 16)).astype(np.float32)
    b = rng.normal(size=(16, 32)).astype(np.float32)
    assert freivalds_check(a, b, a @ b, rng)


def test_freivalds_rejects_significant_corruption():
    rng = RNG(4)
    a = rng.normal(size=(32, 16)).astype(np.float32)
    b = rng.normal(size=(16, 32)).astype(np.float32)
    c = a @ b
    c[5, 7] += 10.0
    assert not freivalds_check(a, b, c, rng)
    with pytest.raises(ValueError):
        freivalds_check(a, b, c, rng, rounds=0)


def test_detection_rates_high_for_meaningful_flips():
    rng = RNG(5)
    assert detection_rate((16, 16), 20, rng, detector="freivalds") > 0.9
    assert detection_rate((16, 16), 20, rng, detector="checksum") == 1.0
    with pytest.raises(ValueError):
        detection_rate((4, 4), 1, rng, detector="psychic")


# --- Failover ----------------------------------------------------------------


def test_single_link_failure_keeps_mpft_connected():
    """§5.1.1 robustness: one NIC/link failure does not partition the
    cluster (NVLink forwarding reroutes through other planes)."""
    c = build_mpft_cluster(4)
    fail_link(c.topology, "n0g0", "MPFT/p0/leaf0")
    impact = assess_impact(c)
    assert impact.connectivity == 1.0
    assert hosts_reachable(c.topology, "n0g0", "n1g0")


def test_plane_failure_is_isolated():
    """Killing an entire plane leaves all GPU pairs connected."""
    c = build_mpft_cluster(4)
    fail_entire_plane(c, plane=0)
    assert assess_impact(c).connectivity == 1.0


def test_plane_switches_enumeration():
    c = build_mpft_cluster(4)
    switches = plane_switches(c, 0)
    assert switches and all("p0" in s for s in switches)


def test_fail_switch_validation():
    c = build_mpft_cluster(2)
    with pytest.raises(KeyError):
        fail_switch(c.topology, "n0g0")  # a host, not a switch
    with pytest.raises(KeyError):
        fail_link(c.topology, "n0g0", "n1g0")  # no such link


def test_mrft_single_spine_failure_survives():
    c = build_mrft_cluster(16)
    fail_switch(c.topology, "MRFT/spine0")
    assert assess_impact(c).connectivity == 1.0
