"""Trainable model, synthetic data, and the §2.4 validation pipeline."""

import numpy as np
import pytest

from repro.model import TINY_DENSE_GQA, TINY_MLA_MOE
from repro.training import (
    BF16_POLICY,
    FP32_POLICY,
    FP8_POLICY,
    TrainableTransformer,
    batch_iterator,
    markov_corpus,
    train,
    validate_precision,
)

RNG = np.random.default_rng


def test_markov_corpus_properties():
    corpus = markov_corpus(16, 500, seed=0)
    assert corpus.tokens.shape == (500,)
    assert corpus.tokens.min() >= 0 and corpus.tokens.max() < 16
    assert corpus.transition.shape == (16, 16)
    assert np.allclose(corpus.transition.sum(axis=1), 1.0)
    assert 0 < corpus.conditional_entropy <= np.log(16)


def test_markov_corpus_concentration_controls_entropy():
    sharp = markov_corpus(16, 100, seed=0, concentration=0.05)
    flat = markov_corpus(16, 100, seed=0, concentration=10.0)
    assert sharp.conditional_entropy < flat.conditional_entropy


def test_markov_corpus_validation():
    with pytest.raises(ValueError):
        markov_corpus(1, 100)
    with pytest.raises(ValueError):
        markov_corpus(4, 100, concentration=0.0)


def test_batch_iterator_shapes():
    corpus = markov_corpus(16, 200, seed=1)
    batches = list(batch_iterator(corpus, batch_size=4, seq_len=8, num_batches=3))
    assert len(batches) == 3
    for b in batches:
        assert b.shape == (4, 8)
    with pytest.raises(ValueError):
        list(batch_iterator(corpus, 4, 500, 1))


def test_model_parameter_count_positive():
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    assert model.num_parameters() > 50_000
    assert len(model.parameters()) > 20


def test_logits_shape():
    model = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    tokens = RNG(0).integers(0, 256, size=(2, 8))
    logits = model.logits(tokens)
    assert logits.shape == (2, 8, 256)
    assert np.all(np.isfinite(logits.data))


def test_loss_breakdown_includes_mtp():
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    tokens = RNG(1).integers(0, 256, size=(2, 10))
    breakdown = model.loss(tokens)
    assert len(breakdown.mtp) == 1
    assert float(breakdown.total.data) == pytest.approx(
        breakdown.main + 0.3 * breakdown.mtp[0], rel=1e-5
    )


def test_loss_rejects_short_sequences():
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    with pytest.raises(ValueError):
        model.loss(RNG(2).integers(0, 256, size=(1, 3)))


def test_initial_loss_near_uniform():
    model = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    tokens = RNG(3).integers(0, 256, size=(4, 12))
    breakdown = model.loss(tokens)
    # Random init adds logit variance on top of the uniform ln(V) floor.
    assert np.log(256) * 0.95 < breakdown.main < np.log(256) * 1.25


def test_training_reduces_loss():
    corpus = markov_corpus(TINY_DENSE_GQA.vocab_size, 5000, seed=2, concentration=0.05)
    model = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    result = train(model, corpus, steps=40, batch_size=8, seq_len=12, lr=5e-3)
    assert result.final_loss < result.losses[0] - 0.3


def test_training_mla_moe_reduces_loss():
    corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 5000, seed=3, concentration=0.05)
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    result = train(model, corpus, steps=30, batch_size=8, seq_len=12, lr=5e-3)
    assert result.final_loss < result.losses[0]


def test_same_seed_same_init():
    a = TrainableTransformer(TINY_DENSE_GQA, seed=7)
    b = TrainableTransformer(TINY_DENSE_GQA, seed=7)
    for pa, pb in zip(a.parameters(), b.parameters()):
        assert np.array_equal(pa.data, pb.data)


def test_policies_change_forward_values():
    tokens = RNG(4).integers(0, 256, size=(1, 8))
    fp32 = TrainableTransformer(TINY_DENSE_GQA, seed=0, policy=FP32_POLICY)
    fp8 = TrainableTransformer(TINY_DENSE_GQA, seed=0, policy=FP8_POLICY)
    a, b = fp32.logits(tokens).data, fp8.logits(tokens).data
    assert not np.allclose(a, b)
    assert np.allclose(a, b, atol=2.0)  # quantization is a perturbation


def test_validate_precision_pipeline():
    """§2.4's paired experiment: FP8 tracks the BF16 baseline."""
    report = validate_precision(
        TINY_DENSE_GQA,
        baseline_policy=BF16_POLICY,
        candidate_policy=FP8_POLICY,
        steps=25,
        batch_size=8,
        seq_len=12,
        seed=0,
    )
    assert report.baseline.policy_name == "bf16"
    assert report.candidate.policy_name == "fp8-fine-grained"
    assert abs(report.relative_loss_gap) < 0.05


def test_train_validation():
    corpus = markov_corpus(16, 100, seed=0)
    model = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    with pytest.raises(ValueError):
        train(model, corpus, steps=0)


def test_greedy_next_shape():
    model = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    out = model.greedy_next(RNG(5).integers(0, 256, size=(3, 6)))
    assert out.shape == (3,)
