"""Model configuration validation and published preset shapes."""

import pytest

from repro.model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    MODEL_CATALOG,
    QWEN25_72B,
    AttentionConfig,
    AttentionKind,
    ModelConfig,
    MoEConfig,
)


def test_deepseek_v3_preset_matches_technical_report():
    cfg = DEEPSEEK_V3
    assert cfg.hidden_size == 7168
    assert cfg.num_layers == 61
    assert cfg.attention.kind is AttentionKind.MLA
    assert cfg.attention.kv_lora_rank == 512
    assert cfg.attention.qk_rope_head_dim == 64
    assert cfg.moe.num_routed_experts == 256
    assert cfg.moe.experts_per_token == 8
    assert cfg.moe.num_shared_experts == 1
    # Section 4.3: 8 groups of 32 experts, at most 4 nodes per token.
    assert cfg.moe.num_expert_groups == 8
    assert cfg.moe.experts_per_group == 32
    assert cfg.moe.max_groups_per_token == 4
    assert cfg.moe.active_experts_per_token == 9


def test_deepseek_v2_preset():
    assert DEEPSEEK_V2.moe.num_routed_experts == 160
    assert DEEPSEEK_V2.moe.experts_per_token == 6
    assert DEEPSEEK_V2.num_dense_layers == 1


def test_dense_presets_have_no_moe():
    assert not QWEN25_72B.is_moe
    assert not LLAMA31_405B.is_moe
    assert QWEN25_72B.num_moe_layers == 0


def test_num_moe_layers():
    assert DEEPSEEK_V3.num_moe_layers == 58


def test_mqa_requires_single_kv_head():
    with pytest.raises(ValueError):
        AttentionConfig(kind=AttentionKind.MQA, num_heads=8, qk_head_dim=64, v_head_dim=64, num_kv_heads=2)


def test_mha_requires_matching_kv_heads():
    with pytest.raises(ValueError):
        AttentionConfig(kind=AttentionKind.MHA, num_heads=8, qk_head_dim=64, v_head_dim=64, num_kv_heads=4)


def test_gqa_divisibility_enforced():
    with pytest.raises(ValueError):
        AttentionConfig(kind=AttentionKind.GQA, num_heads=8, qk_head_dim=64, v_head_dim=64, num_kv_heads=3)


def test_mla_requires_latent_rank():
    with pytest.raises(ValueError):
        AttentionConfig(kind=AttentionKind.MLA, num_heads=8, qk_head_dim=64, v_head_dim=64)


def test_moe_topk_bounds():
    with pytest.raises(ValueError):
        MoEConfig(num_routed_experts=4, num_shared_experts=0, experts_per_token=5, intermediate_size=8)


def test_moe_group_divisibility():
    with pytest.raises(ValueError):
        MoEConfig(
            num_routed_experts=10,
            num_shared_experts=0,
            experts_per_token=2,
            intermediate_size=8,
            num_expert_groups=3,
            max_groups_per_token=2,
        )


def test_moe_group_limit_must_fit_topk():
    with pytest.raises(ValueError):
        MoEConfig(
            num_routed_experts=8,
            num_shared_experts=0,
            experts_per_token=4,
            intermediate_size=8,
            num_expert_groups=8,
            max_groups_per_token=2,
        )


def test_full_qk_head_dim_includes_rope():
    assert DEEPSEEK_V3.attention.full_qk_head_dim == 192
    assert QWEN25_72B.attention.full_qk_head_dim == 128


def test_dense_layers_must_leave_moe_layer():
    with pytest.raises(ValueError):
        DEEPSEEK_V3.scaled("bad", num_dense_layers=61)


def test_scaled_override():
    small = DEEPSEEK_V3.scaled("v3-small", num_layers=8, num_dense_layers=1)
    assert small.num_layers == 8
    assert small.hidden_size == DEEPSEEK_V3.hidden_size
    assert DEEPSEEK_V3.num_layers == 61  # original untouched


def test_catalog_keys_resolve():
    assert MODEL_CATALOG["deepseek-v3"] is DEEPSEEK_V3
    for cfg in MODEL_CATALOG.values():
        assert isinstance(cfg, ModelConfig)
