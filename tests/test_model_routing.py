"""Expert routing: top-k, node-limited routing (§4.3), gate balancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import (
    DEEPSEEK_V3,
    TINY_MLA_MOE,
    MoEGate,
    expert_load,
    load_imbalance,
    mean_nodes_touched,
    node_limited_topk,
    nodes_touched,
    topk_routing,
)

RNG = np.random.default_rng


def test_topk_selects_largest():
    scores = np.array([[0.1, 0.9, 0.5, 0.7]])
    decision = topk_routing(scores, 2)
    assert set(decision.expert_ids[0]) == {1, 3}
    # Descending order by score.
    assert decision.expert_ids[0, 0] == 1


def test_topk_weights_normalized():
    scores = RNG(0).uniform(0.01, 1.0, size=(50, 16))
    decision = topk_routing(scores, 4)
    assert np.allclose(decision.weights.sum(axis=1), 1.0)
    assert np.all(decision.weights >= 0)


def test_topk_k_too_large_raises():
    with pytest.raises(ValueError):
        topk_routing(np.ones((1, 4)), 5)


def test_node_limited_respects_group_cap():
    scores = RNG(1).uniform(size=(200, 256))
    decision = node_limited_topk(scores, k=8, num_groups=8, max_groups=4)
    touched = nodes_touched(decision, num_groups=8, num_experts=256)
    assert np.all(touched <= 4)


def test_node_limited_equals_topk_when_unrestricted():
    scores = RNG(2).uniform(size=(64, 32))
    free = topk_routing(scores, 4)
    limited = node_limited_topk(scores, k=4, num_groups=8, max_groups=8)
    assert np.array_equal(np.sort(free.expert_ids, 1), np.sort(limited.expert_ids, 1))


def test_node_limited_selects_best_groups():
    # One group has overwhelmingly large scores; it must be kept.
    scores = np.full((1, 16), 0.1)
    scores[0, 4:8] = 10.0  # group 1 of 4 groups
    decision = node_limited_topk(scores, k=2, num_groups=4, max_groups=1)
    assert set(decision.expert_ids[0]) <= {4, 5, 6, 7}


def test_node_limited_validations():
    scores = np.ones((1, 16))
    with pytest.raises(ValueError):
        node_limited_topk(scores, 2, num_groups=3, max_groups=2)  # 16 % 3 != 0
    with pytest.raises(ValueError):
        node_limited_topk(scores, 2, num_groups=4, max_groups=5)
    with pytest.raises(ValueError):
        node_limited_topk(scores, 9, num_groups=8, max_groups=4)  # 4*2 < 9


@settings(max_examples=30, deadline=None)
@given(
    tokens=st.integers(1, 32),
    seed=st.integers(0, 1000),
    max_groups=st.integers(1, 8),
)
def test_node_limited_invariants(tokens, seed, max_groups):
    """For any scores: k distinct experts, <= max_groups groups, weights sum 1."""
    k = min(8, max_groups * 4)
    scores = RNG(seed).uniform(size=(tokens, 32))
    decision = node_limited_topk(scores, k=k, num_groups=8, max_groups=max_groups)
    for row in decision.expert_ids:
        assert len(set(row.tolist())) == k
    assert np.all(nodes_touched(decision, 8, 32) <= max_groups)
    assert np.allclose(decision.weights.sum(axis=1), 1.0)


def test_nodes_touched_counts_distinct_groups():
    scores = np.zeros((1, 8))
    decision = topk_routing(np.array([[9, 8, 0, 0, 7, 0, 0, 0.0]]), 3)
    # Experts 0,1 in group 0; expert 4 in group 2 (group size 2 -> 4 groups).
    assert nodes_touched(decision, num_groups=4, num_experts=8)[0] == 2
    del scores


def test_mean_nodes_touched_under_limit_for_v3_shape():
    scores = RNG(3).uniform(size=(512, 256))
    moe = DEEPSEEK_V3.moe
    decision = node_limited_topk(
        scores, moe.experts_per_token, moe.num_expert_groups, moe.max_groups_per_token
    )
    m = mean_nodes_touched(decision, moe.num_expert_groups, moe.num_routed_experts)
    assert m <= 4.0
    free = topk_routing(scores, moe.experts_per_token)
    m_free = mean_nodes_touched(free, moe.num_expert_groups, moe.num_routed_experts)
    assert m < m_free  # the co-design reduces node fan-out


def test_expert_load_conserves_assignments():
    scores = RNG(4).uniform(size=(100, 16))
    decision = topk_routing(scores, 4)
    load = expert_load(decision, 16)
    assert load.sum() == 100 * 4


def test_gate_routes_with_node_limit():
    moe = TINY_MLA_MOE.moe
    gate = MoEGate(moe, hidden_size=16, rng=RNG(5))
    x = RNG(6).normal(size=(64, 16)).astype(np.float32)
    decision = gate.route(x)
    assert decision.expert_ids.shape == (64, moe.experts_per_token)
    touched = nodes_touched(decision, moe.num_expert_groups, moe.num_routed_experts)
    assert np.all(touched <= moe.max_groups_per_token)


def test_gate_affinities_in_unit_interval():
    gate = MoEGate(TINY_MLA_MOE.moe, hidden_size=16, rng=RNG(7))
    aff = gate.affinities(RNG(8).normal(size=(10, 16)).astype(np.float32))
    assert np.all(aff > 0) and np.all(aff < 1)


def test_bias_update_reduces_imbalance():
    """Aux-loss-free balancing: repeated bias updates even the load."""
    moe = TINY_MLA_MOE.moe
    gate = MoEGate(moe, hidden_size=16, rng=RNG(9), bias_update_speed=0.05)
    # Skew the gate so expert 0 dominates every token's affinities.
    gate.weight[:, 0] += 2.0
    x = RNG(10).normal(size=(512, 16)).astype(np.float32)
    before = load_imbalance(gate.route(x), moe.num_routed_experts)
    for _ in range(100):
        gate.update_bias(gate.route(x))
    after = load_imbalance(gate.route(x), moe.num_routed_experts)
    assert after < before


def test_bias_does_not_change_gate_weights_source():
    """Selection uses biased scores but weights come from affinities."""
    moe = TINY_MLA_MOE.moe
    gate = MoEGate(moe, hidden_size=16, rng=RNG(11))
    gate.bias[:] = RNG(12).normal(size=moe.num_routed_experts).astype(np.float32)
    x = RNG(13).normal(size=(8, 16)).astype(np.float32)
    decision = gate.route(x)
    aff = gate.affinities(x)
    rows = np.arange(8)[:, None]
    expected = aff[rows, decision.expert_ids]
    expected = expected / expected.sum(axis=1, keepdims=True)
    assert np.allclose(decision.weights, expected)
