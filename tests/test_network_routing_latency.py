"""Routing policies (Figure 8 machinery) and the Table 5 latency model."""

import pytest

from repro.network import (
    IB,
    ROCE,
    RoutingPolicy,
    build_mpft_cluster,
    collision_free_static_table,
    ecmp_index,
    end_to_end_latency,
    equal_cost_paths,
    ft2_from_radix,
    nvlink_latency,
    path_latency,
    pxn_path,
    route_flow,
    table5_rows,
)


def test_table5_values_exact():
    rows = {r.link_layer: r for r in table5_rows()}
    assert rows["RoCE"].same_leaf_us == pytest.approx(3.6, abs=0.01)
    assert rows["RoCE"].cross_leaf_us == pytest.approx(5.6, abs=0.01)
    assert rows["InfiniBand"].same_leaf_us == pytest.approx(2.8, abs=0.01)
    assert rows["InfiniBand"].cross_leaf_us == pytest.approx(3.7, abs=0.01)
    assert rows["NVLink"].same_leaf_us == pytest.approx(3.33, abs=0.01)
    assert rows["NVLink"].cross_leaf_us is None


def test_ib_beats_roce_everywhere():
    for hops in (1, 3, 5):
        assert end_to_end_latency(IB, hops) < end_to_end_latency(ROCE, hops)


def test_latency_grows_with_hops_and_size():
    assert end_to_end_latency(IB, 3) > end_to_end_latency(IB, 1)
    assert end_to_end_latency(IB, 1, 1 << 20) > end_to_end_latency(IB, 1, 64)
    with pytest.raises(ValueError):
        end_to_end_latency(IB, -1)


def test_nvlink_latency_small_message():
    assert nvlink_latency(64) == pytest.approx(3.33e-6, rel=0.01)


def test_path_latency_counts_hops():
    c = build_mpft_cluster(16)  # 2 leaves/plane -> spines exist
    same_leaf = pxn_path(c, "n0g0", "n1g0")
    cross_leaf = pxn_path(c, "n0g0", "n9g0")
    assert path_latency(c, same_leaf) == pytest.approx(2.8e-6, rel=0.01)
    assert path_latency(c, cross_leaf) == pytest.approx(3.7e-6, rel=0.01)


def test_path_latency_nvlink_forwarding_adds_cost():
    c = build_mpft_cluster(2)
    direct = pxn_path(c, "n0g3", "n1g3")
    forwarded = pxn_path(c, "n0g0", "n1g3")
    assert path_latency(c, forwarded) == pytest.approx(
        path_latency(c, direct) + 3.33e-6, rel=0.01
    )


def test_ecmp_index_deterministic():
    a = ecmp_index("h0", "h9", 8)
    assert a == ecmp_index("h0", "h9", 8)
    assert 0 <= a < 8
    with pytest.raises(ValueError):
        ecmp_index("a", "b", 0)


def test_ecmp_routes_single_path():
    topo = ft2_from_radix(8)
    flows = route_flow(topo, "h0", "h5", 1e6, RoutingPolicy.ECMP)
    assert len(flows) == 1
    assert flows[0].size == 1e6


def test_adaptive_splits_over_all_paths():
    topo = ft2_from_radix(8)
    flows = route_flow(topo, "h0", "h5", 1e6, RoutingPolicy.ADAPTIVE)
    assert len(flows) == 4  # 4 spines
    assert sum(f.size for f in flows) == pytest.approx(1e6)
    paths = {tuple(f.path) for f in flows}
    assert len(paths) == 4


def test_static_uses_table():
    topo = ft2_from_radix(8)
    table = {("h0", "h5"): 2}
    flows = route_flow(topo, "h0", "h5", 1e6, RoutingPolicy.STATIC, static_table=table)
    expected = equal_cost_paths(topo, "h0", "h5")[2]
    assert flows[0].path == expected


def test_static_default_index_zero():
    topo = ft2_from_radix(8)
    flows = route_flow(topo, "h0", "h5", 1e6, RoutingPolicy.STATIC)
    assert flows[0].path == equal_cost_paths(topo, "h0", "h5")[0]


def test_collision_free_table_spreads_conflicting_pairs():
    topo = ft2_from_radix(8)
    # Four pairs all leaf0 -> leaf1: ECMP could collide; the static
    # table must spread them across the 4 spine paths.
    pairs = [(f"h{i}", f"h{4 + i}") for i in range(4)]
    table = collision_free_static_table(topo, pairs)
    chosen = set()
    for pair in pairs:
        path = equal_cost_paths(topo, *pair)[table[pair]]
        spine = [n for n in path if "spine" in n][0]
        chosen.add(spine)
    assert len(chosen) == 4
