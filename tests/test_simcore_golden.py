"""Golden determinism pins for the discrete-event simulation core.

The perf work on :mod:`repro.serving` and :mod:`repro.network.flowsim`
(identity-keyed requests, incremental aggregates, incremental max-min)
is only allowed to change *how fast* the simulators run, never *what*
they compute.  These tests pin that contract bit-for-bit:

* The **full** seeded :class:`repro.serving.SimReport` — every field,
  including the complete queue-depth and KV-occupancy traces, not just
  percentiles — is serialized to JSON and compared against a golden
  file generated before the optimizations landed.  ``json.dumps`` uses
  ``repr`` for floats, so the comparison is exact to the last bit.
* The Chrome trace file of the same runs is pinned by SHA-256, so span
  timings, ordering and counter samples are byte-identical too.

Two scenarios cover the interesting code paths: a *colocated* run with
a deliberately tight KV pool (preemption + recompute + MTP) and a
*disaggregated* run (KV transfer, separate pools, bursty arrivals).

Regenerate (only when an intentional behavior change lands) with::

    PYTHONPATH=src python tests/test_simcore_golden.py --regen
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.faults import FaultSchedule
from repro.obs import Tracer
from repro.serving import (
    MTPConfig,
    ServingSimulator,
    SimConfig,
    StepCostModel,
    WorkloadSpec,
)
from repro.serving.report import report_asdict

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


def _colocated_config() -> SimConfig:
    # Tight KV pool: forces preemption/recompute; MTP exercises the
    # draft-acceptance RNG stream; bursty arrivals exercise queueing.
    return SimConfig(
        workload=WorkloadSpec(
            request_rate=12.0,
            num_requests=160,
            prompt_mean=384,
            prompt_cv=0.6,
            output_mean=96,
            output_cv=0.6,
            arrival="bursty",
        ),
        costs=StepCostModel(mtp=MTPConfig(enabled=True)),
        mode="colocated",
        prefill_gpus=1,
        decode_gpus=3,
        kv_blocks_per_gpu=24,
        seed=7,
        record_requests=True,
    )


def _disaggregated_config() -> SimConfig:
    return SimConfig(
        workload=WorkloadSpec(
            request_rate=8.0,
            num_requests=160,
            prompt_mean=512,
            prompt_cv=0.5,
            output_mean=128,
            output_cv=0.5,
        ),
        mode="disaggregated",
        prefill_gpus=2,
        decode_gpus=6,
        seed=3,
        record_requests=True,
    )


SCENARIOS = {
    "colocated": _colocated_config,
    "disaggregated": _disaggregated_config,
}


def _run(name: str, trace_path: Path, config: SimConfig | None = None) -> dict:
    """Run one scenario with tracing on; return the pinnable payload."""
    tracer = Tracer()
    simulator = ServingSimulator(
        SCENARIOS[name]() if config is None else config, tracer=tracer
    )
    report = simulator.run()
    tracer.write(str(trace_path))
    # report_asdict drops the always-None degradation key of fault-free
    # runs, so the payload shape matches the pre-fault-engine goldens.
    return {
        "report": report_asdict(report),
        "dropped": list(simulator.dropped),
        "decode_batch_profile": [list(row) for row in simulator.decode_batch_profile],
        "trace_sha256": hashlib.sha256(trace_path.read_bytes()).hexdigest(),
        "trace_events": len(tracer.events),
    }


def _golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"simreport_{name}.json"


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_simreport_matches_golden(name: str, tmp_path: Path) -> None:
    golden = json.loads(_golden_path(name).read_text())
    current = _run(name, tmp_path / f"{name}.trace.json")
    # Compare via canonical JSON so the diff on failure is readable and
    # float comparison is repr-exact (bit-identical round trip).
    assert json.dumps(current, sort_keys=True) == json.dumps(golden, sort_keys=True)


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_null_fault_schedule_is_byte_identical(name: str, tmp_path: Path) -> None:
    """Faults *disabled* must mean exactly that: a config carrying an
    empty :class:`FaultSchedule` (and the default recovery policy) must
    reproduce the pre-fault-engine goldens bit-for-bit — SimReport JSON
    and trace SHA-256 both."""
    golden = json.loads(_golden_path(name).read_text())
    config = dataclasses.replace(SCENARIOS[name](), faults=FaultSchedule())
    current = _run(name, tmp_path / f"{name}.nullfaults.trace.json", config=config)
    assert json.dumps(current, sort_keys=True) == json.dumps(golden, sort_keys=True)


def test_goldens_exercise_interesting_paths(tmp_path: Path) -> None:
    """The pins are only meaningful if the scenarios hit the hot paths."""
    colo = _run("colocated", tmp_path / "c.trace.json")["report"]
    disagg = _run("disaggregated", tmp_path / "d.trace.json")["report"]
    assert colo["preemptions"] > 0  # preempt + recompute path
    assert colo["mtp_acceptance_measured"] > 0  # MTP draft RNG stream
    assert disagg["preemptions"] == 0
    assert disagg["completed"] == 160  # KV-transfer path end to end


def _regen() -> None:
    import tempfile

    GOLDEN_DIR.mkdir(exist_ok=True)
    with tempfile.TemporaryDirectory() as tmp:
        for name in sorted(SCENARIOS):
            payload = _run(name, Path(tmp) / f"{name}.trace.json")
            path = _golden_path(name)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
