"""Tests for the fault injection & recovery engine (:mod:`repro.faults`).

Covers the schedule layer (ordering, serialization, MTBF sampling, CLI
parsing), the serving integration (seeded determinism, retry/backoff
bounds, degraded admission, the request conservation identity), the
network integration (plane isolation, reroute-or-stall, repair), the
failover restore helpers, and the checkpoint/restart goodput simulation
pinned against the Young-Daly closed form.
"""

from __future__ import annotations

import hashlib
import math

import pytest

from repro.faults import (
    NEVER,
    NODE_GPUS,
    FaultEvent,
    FaultSchedule,
    RecoveryPolicy,
    cluster_reroute,
    expand_plane_schedule,
    link_target,
    parse_faults_arg,
)
from repro.network import Flow, FlowSimulator, build_mpft_cluster, planes_used, pxn_path
from repro.obs import Tracer
from repro.reliability import (
    fail_link,
    fail_switch,
    failed,
    goodput_fraction,
    hosts_reachable,
    optimal_checkpoint_interval,
    restore_link,
    restore_switch,
)
from repro.serving import (
    KVPoolConfig,
    PagedKVPool,
    ServingSimulator,
    SimConfig,
    WorkloadSpec,
    report_asdict,
)
from repro.training import simulate_checkpointed_training


# -- schedules -----------------------------------------------------------


class TestFaultSchedule:
    def test_events_sort_by_time(self):
        late = FaultEvent(time=9.0, kind="gpu")
        early = FaultEvent(time=1.0, kind="node")
        sched = FaultSchedule(events=(late, early))
        assert sched.times() == (1.0, 9.0)
        assert sched.events[0] is early

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultEvent(time=-1.0, kind="gpu")
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="meteor")
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="gpu", count=0)
        with pytest.raises(ValueError):
            FaultEvent(time=0.0, kind="gpu", mttr=0.0)

    def test_gpus_lost(self):
        assert FaultEvent(time=0.0, kind="gpu", count=3).gpus_lost == 3
        assert FaultEvent(time=0.0, kind="node", count=2).gpus_lost == 2 * NODE_GPUS

    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(events=(FaultEvent(time=0.0, kind="step"),))

    def test_for_kinds_filters(self):
        sched = FaultSchedule(
            events=(
                FaultEvent(time=1.0, kind="gpu", target="decode"),
                FaultEvent(time=2.0, kind="link", target="a|b"),
                FaultEvent(time=3.0, kind="step"),
            )
        )
        assert [e.kind for e in sched.for_kinds(("gpu", "node"))] == ["gpu"]
        assert sched.times(("step",)) == (3.0,)

    def test_json_roundtrip(self, tmp_path):
        sched = FaultSchedule(
            events=(
                FaultEvent(time=5.0, kind="node", target="pool", count=2, mttr=30.0),
                FaultEvent(time=1.5, kind="link", target="a|b"),
            )
        )
        # text, dict and file-path forms all reproduce the schedule
        assert FaultSchedule.from_json(sched.to_json()) == sched
        assert FaultSchedule.from_json({"events": [e.to_dict() for e in sched.events]}) == sched
        path = tmp_path / "faults.json"
        path.write_text(sched.to_json())
        assert FaultSchedule.from_json(path) == sched

    def test_infinite_mttr_survives_roundtrip(self):
        sched = FaultSchedule(events=(FaultEvent(time=1.0, kind="gpu"),))
        event = FaultSchedule.from_json(sched.to_json()).events[0]
        assert event.mttr == math.inf

    def test_sampled_is_seed_deterministic(self):
        kwargs = dict(kind="node", targets=("prefill", "decode"), mttr=25.0)
        a = FaultSchedule.sampled(100.0, 1000.0, seed=11, **kwargs)
        b = FaultSchedule.sampled(100.0, 1000.0, seed=11, **kwargs)
        c = FaultSchedule.sampled(100.0, 1000.0, seed=12, **kwargs)
        assert a == b
        assert a != c
        assert a.events  # horizon of 10x MTBF: failures all but certain
        assert all(0 <= e.time < 1000.0 for e in a.events)
        assert all(e.target in ("prefill", "decode") for e in a.events)
        assert all(e.mttr == 25.0 for e in a.events)

    def test_sampled_validation(self):
        with pytest.raises(ValueError):
            FaultSchedule.sampled(0.0, 10.0, seed=0)
        with pytest.raises(ValueError):
            FaultSchedule.sampled(1.0, 10.0, seed=0, targets=())

    def test_parse_mtbf_forms(self):
        sched = parse_faults_arg("mtbf:50", horizon=500.0, seed=3)
        assert all(e.mttr == 5.0 for e in sched.events)  # default MTBF/10
        sched = parse_faults_arg("mtbf:50:2", horizon=500.0, seed=3)
        assert all(e.mttr == 2.0 for e in sched.events)
        sched = parse_faults_arg("mtbf:50:2:100", horizon=500.0, seed=3)
        assert all(e.time < 100.0 for e in sched.events)  # explicit horizon wins
        with pytest.raises(ValueError):
            parse_faults_arg("mtbf:", horizon=10.0, seed=0)

    def test_parse_json_path(self, tmp_path):
        sched = FaultSchedule(events=(FaultEvent(time=2.0, kind="gpu", target="pool"),))
        path = tmp_path / "sched.json"
        path.write_text(sched.to_json())
        assert parse_faults_arg(str(path), horizon=10.0, seed=0) == sched

    def test_recovery_policy_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(retry_budget=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base=0.0)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RecoveryPolicy(degraded_queue_limit=0)


# -- serving integration -------------------------------------------------


def _node_failure_config() -> SimConfig:
    """A colocated pool under load that loses a node for 10 s at t=5."""
    return SimConfig(
        workload=WorkloadSpec(
            request_rate=10.0,
            num_requests=300,
            prompt_mean=512,
            output_mean=128,
            arrival="bursty",
        ),
        mode="colocated",
        prefill_gpus=2,
        decode_gpus=8,
        kv_blocks_per_gpu=40,
        seed=7,
        faults=FaultSchedule(
            events=(FaultEvent(time=5.0, kind="node", target="pool", mttr=10.0),)
        ),
        recovery=RecoveryPolicy(retry_budget=2, degraded_queue_limit=24),
    )


class TestServingFaults:
    def test_fault_free_run_has_no_degradation(self):
        config = SimConfig(
            workload=WorkloadSpec(request_rate=4.0, num_requests=40), seed=1
        )
        report = ServingSimulator(config).run()
        assert report.degradation is None
        assert "degradation" not in report_asdict(report)

    def test_seeded_fault_run_is_reproducible(self, tmp_path):
        digests, reports = [], []
        for i in range(2):
            tracer = Tracer()
            report = ServingSimulator(_node_failure_config(), tracer=tracer).run()
            path = tmp_path / f"run{i}.trace.json"
            tracer.write(str(path))
            digests.append(hashlib.sha256(path.read_bytes()).hexdigest())
            reports.append(report)
        assert reports[0] == reports[1]
        assert digests[0] == digests[1]

    def test_node_failure_accounting_and_recovery(self):
        report = ServingSimulator(_node_failure_config()).run()
        d = report.degradation
        assert d is not None and len(d.windows) == 1
        # The conservation identity: every arrival is accounted for.
        assert d.accounted
        assert d.admitted == 300
        assert d.finished == report.completed
        assert d.dropped >= d.shed + d.retry_dropped
        # Goodput dips during the outage and recovers past it after repair.
        w = d.windows[0]
        assert w.gpus_lost == NODE_GPUS
        assert w.goodput_during < w.goodput_before
        assert w.goodput_after > w.goodput_during
        # Degraded admission shed load; the step in flight was aborted.
        assert d.shed > 0
        assert d.steps_aborted >= 1
        assert d.lost_tokens > 0
        # Every eviction either retried or exhausted its budget.
        assert d.evicted == d.retries + d.retry_dropped

    def test_permanent_fault_strands_requests(self):
        config = SimConfig(
            workload=WorkloadSpec(request_rate=4.0, num_requests=60),
            mode="colocated",
            prefill_gpus=1,
            decode_gpus=3,
            seed=5,
            faults=FaultSchedule(
                events=(FaultEvent(time=2.0, kind="node", target="pool"),)
            ),
        )
        report = ServingSimulator(config).run()
        d = report.degradation
        assert d is not None and d.accounted
        # All four GPUs die and never return: later arrivals are stranded.
        assert d.unserved > 0
        w = d.windows[0]
        assert w.end == NEVER
        assert w.goodput_after == 0.0

    def test_null_schedule_equals_no_schedule(self):
        base = SimConfig(workload=WorkloadSpec(request_rate=4.0, num_requests=40), seed=2)
        nulled = SimConfig(
            workload=WorkloadSpec(request_rate=4.0, num_requests=40),
            seed=2,
            faults=FaultSchedule(),
        )
        assert ServingSimulator(base).run() == ServingSimulator(nulled).run()


# -- paged KV pool resize ------------------------------------------------


class TestKvPoolResize:
    def test_grow_and_shrink(self):
        pool = PagedKVPool(KVPoolConfig(total_blocks=10, block_tokens=64))
        assert pool.allocate(1, 64 * 6)
        assert pool.free_blocks == 4
        pool.resize(16)
        assert pool.free_blocks == 10
        assert pool.config.total_blocks == 16
        pool.resize(4)  # below the 6 blocks held: over-committed
        assert pool.free_blocks == -2
        pool.free(1)
        assert pool.free_blocks == 4

    def test_resize_validation(self):
        pool = PagedKVPool(KVPoolConfig(total_blocks=4))
        with pytest.raises(ValueError):
            pool.resize(0)


# -- failover restore helpers --------------------------------------------


class TestFailoverRestore:
    def test_link_roundtrip(self):
        cluster = build_mpft_cluster(2)
        topo = cluster.topology
        a, b = "n0g0", "MPFT/p0/leaf0"
        before = dict(topo.graph.edges[a, b])
        attrs = fail_link(topo, a, b)
        assert not topo.graph.has_edge(a, b)
        restore_link(topo, a, b, attrs)
        assert dict(topo.graph.edges[a, b]) == before
        with pytest.raises(KeyError):
            restore_link(topo, a, b, attrs)  # already up
        with pytest.raises(KeyError):
            fail_link(topo, a, "no-such-node")

    def test_switch_roundtrip(self):
        cluster = build_mpft_cluster(2)
        topo = cluster.topology
        switch = "MPFT/p1/leaf0"
        degree = topo.graph.degree[switch]
        node_attrs, links = fail_switch(topo, switch)
        assert switch not in topo.graph
        assert len(links) == degree
        restore_switch(topo, switch, node_attrs, links)
        assert topo.graph.degree[switch] == degree
        assert topo.graph.nodes[switch]["plane"] == 1
        with pytest.raises(KeyError):
            restore_switch(topo, switch, node_attrs, links)
        with pytest.raises(KeyError):
            fail_switch(topo, "n0g0")  # hosts are not switches

    def test_failed_context_manager_heals(self):
        cluster = build_mpft_cluster(2)
        topo = cluster.topology
        edges_before = topo.graph.number_of_edges()
        with failed(topo, links=(("n0g0", "MPFT/p0/leaf0"),), switches=("MPFT/p0/leaf0",)):
            assert "MPFT/p0/leaf0" not in topo.graph
            # Plane 0 is gone, but the NVLink detour keeps hosts reachable.
            assert hosts_reachable(topo, "n0g0", "n1g0")
        assert topo.graph.number_of_edges() == edges_before
        assert topo.graph.has_edge("n0g0", "MPFT/p0/leaf0")

    def test_failed_restores_on_exception(self):
        cluster = build_mpft_cluster(2)
        topo = cluster.topology
        edges_before = topo.graph.number_of_edges()
        with pytest.raises(RuntimeError):
            with failed(topo, switches=("MPFT/p0/leaf0",)):
                raise RuntimeError("body blew up")
        assert topo.graph.number_of_edges() == edges_before


# -- network flow integration --------------------------------------------


@pytest.fixture(scope="class")
def mpft():
    cluster = build_mpft_cluster(4)
    flows = []
    for p in range(4):
        src, dst = f"n0g{p}", f"n1g{p}"
        flows.append(Flow(src, dst, 1e9, pxn_path(cluster, src, dst), tag=f"p{p}"))
    return cluster, flows


class TestNetworkFaults:
    def test_empty_schedule_is_identical(self, mpft):
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        base = sim.simulate(flows)
        nulled = sim.simulate(flows, faults=FaultSchedule())
        assert nulled.completion == base.completion
        assert sim.fault_report is None

    def test_plane_isolation_without_reroute(self, mpft):
        """§5.1.1: a dead plane stalls only its own traffic."""
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        base = sim.simulate(flows)
        schedule = expand_plane_schedule(
            cluster,
            FaultSchedule(events=(FaultEvent(time=0.001, kind="plane", target="0"),)),
        )
        # Lowered to per-switch failures (4 nodes: one leaf per plane).
        assert all(e.kind == "switch" for e in schedule.events)
        result = sim.simulate(flows, faults=schedule)
        assert result.completion[0] == math.inf  # plane-0 flow never finishes
        assert 0 in sim.fault_report.unfinished
        assert 0 in sim.fault_report.stalled
        # Surviving planes are bit-for-bit unaffected by the outage.
        for i in range(1, 4):
            assert result.completion[i] == pytest.approx(base.completion[i], abs=1e-9)
        assert result.makespan < math.inf

    def test_reroute_escapes_dead_plane(self, mpft):
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        schedule = expand_plane_schedule(
            cluster,
            FaultSchedule(events=(FaultEvent(time=0.001, kind="plane", target="0"),)),
        )
        result = sim.simulate(flows, faults=schedule, reroute=cluster_reroute(cluster))
        assert all(t < math.inf for t in result.completion.values())
        assert 0 in sim.fault_report.rerouted
        assert sim.fault_report.unfinished == ()
        # The policy's detour really leaves plane 0 (PXN over NVLink).
        alive = {
            edge: cap
            for edge, cap in sim.capacities.items()
            if "p0/" not in edge[0] and "p0/" not in edge[1]
        }
        path = cluster_reroute(cluster)(flows[0], alive)
        assert path is not None
        assert 0 not in planes_used(cluster, path)

    def test_repair_resumes_original_path(self, mpft):
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        base = sim.simulate(flows)
        schedule = expand_plane_schedule(
            cluster,
            FaultSchedule(
                events=(FaultEvent(time=0.001, kind="plane", target="0", mttr=0.02),)
            ),
        )
        result = sim.simulate(flows, faults=schedule)
        # The stalled flow finishes exactly one repair window late.
        assert result.completion[0] == pytest.approx(base.completion[0] + 0.02, rel=1e-6)
        assert sim.fault_report.stall_time == pytest.approx(0.02, rel=1e-6)
        assert sim.fault_report.unfinished == ()

    def test_unlowered_plane_event_rejected(self, mpft):
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        schedule = FaultSchedule(events=(FaultEvent(time=0.001, kind="plane", target="0"),))
        with pytest.raises(ValueError, match="expand_plane_schedule"):
            sim.simulate(flows, faults=schedule)

    def test_link_fault_targets_one_cable(self, mpft):
        cluster, flows = mpft
        sim = FlowSimulator(cluster.topology)
        base = sim.simulate(flows)
        schedule = FaultSchedule(
            events=(
                FaultEvent(
                    time=0.001,
                    kind="link",
                    target=link_target("n0g2", "MPFT/p2/leaf0"),
                    mttr=0.01,
                ),
            )
        )
        result = sim.simulate(flows, faults=schedule)
        assert result.completion[2] == pytest.approx(base.completion[2] + 0.01, rel=1e-6)
        for i in (0, 1, 3):
            assert result.completion[i] == pytest.approx(base.completion[i], abs=1e-9)


# -- checkpoint/restart goodput ------------------------------------------


class TestCheckpointedTraining:
    def test_matches_young_daly_at_optimal_interval(self):
        """§6.1: simulated goodput within 10% of the closed form."""
        mtbf, ckpt, restart = 7200.0, 60.0, 900.0
        interval = optimal_checkpoint_interval(ckpt, mtbf)
        predicted = goodput_fraction(ckpt, restart, mtbf, interval)
        report = simulate_checkpointed_training(
            400 * mtbf, interval, ckpt, restart, mtbf=mtbf, seed=42
        )
        assert report.failures > 100  # long enough to average out noise
        assert abs(report.goodput - predicted) / predicted < 0.10

    def test_wall_time_identity_and_determinism(self):
        mtbf = 500.0
        runs = [
            simulate_checkpointed_training(
                40 * mtbf, 200.0, 10.0, 50.0, mtbf=mtbf, seed=9
            )
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        r = runs[0]
        total = r.work_target + r.checkpoint_time + r.restart_time + r.lost_time
        assert r.wall_time == pytest.approx(total, rel=1e-12)
        assert r.failures > 0 and r.lost_time > 0

    def test_failure_free_run(self):
        report = simulate_checkpointed_training(1000.0, 100.0, 5.0, 50.0)
        assert report.failures == 0
        assert report.checkpoints == 9  # the final chunk needs no checkpoint
        assert report.wall_time == pytest.approx(1000.0 + 9 * 5.0)
        assert report.goodput == pytest.approx(1000.0 / 1045.0)

    def test_explicit_step_schedule(self):
        faults = FaultSchedule(events=(FaultEvent(time=150.0, kind="step"),))
        report = simulate_checkpointed_training(1000.0, 100.0, 5.0, 20.0, faults=faults)
        assert report.failures == 1
        assert report.restart_time == 20.0
        # The failure lands mid-second-interval: work since the last
        # completed checkpoint is lost.
        assert report.lost_time > 0
        total = (
            report.work_target
            + report.checkpoint_time
            + report.restart_time
            + report.lost_time
        )
        assert report.wall_time == pytest.approx(total, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_checkpointed_training(0.0, 10.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_checkpointed_training(10.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_checkpointed_training(10.0, 5.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            simulate_checkpointed_training(10.0, 5.0, 1.0, 1.0, mtbf=0.0)
