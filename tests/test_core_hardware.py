"""Hardware catalog: the calibration constants every experiment uses."""

import pytest

from repro.core import hardware as hw


def test_h800_nvlink_matches_paper_section_43():
    # "NVLink provides 200GB/s bandwidth (of which about 160GB/s can
    # actually be achieved)" — Section 4.3.
    assert hw.NVLINK_H800.bandwidth == pytest.approx(200e9)
    assert hw.NVLINK_H800.effective_bandwidth == pytest.approx(160e9)


def test_ib_cx7_matches_paper_section_43():
    # "each 400Gbps IB NIC delivers only 50GB/s bandwidth ... use 40GB/s
    # for effective bandwidth" — Section 4.3.
    assert hw.IB_CX7_400G.bandwidth == pytest.approx(50e9)
    assert hw.IB_CX7_400G.effective_bandwidth == pytest.approx(40e9)


def test_h800_node_bandwidth_disparity_is_4_to_1():
    # Section 4.3: scale-up : scale-out disparity ~ 4:1.
    assert hw.H800_NODE.scale_up_to_scale_out_ratio == pytest.approx(4.0)


def test_h800_node_shape():
    assert hw.H800_NODE.gpus_per_node == 8
    assert hw.H800_NODE.nics_per_node == 8
    assert hw.H800_NODE.nic_per_gpu == 1.0


def test_gb200_domain_bandwidth():
    # Section 2.3.2: "GB200 NVL72 (900GB/s unidirectional bandwidth
    # across 72 GPUs)".
    assert hw.NVLINK_GB200.effective_bandwidth == pytest.approx(900e9)
    assert hw.GB200_NVL72_NODE.gpus_per_node == 72


def test_latency_constants_reproduce_table5():
    # IB: same-leaf 2.8us (2 NIC sides + 1 switch hop), cross-leaf 3.7us
    # (2 NIC sides + 3 switch hops).
    same = 2 * hw.IB_NIC_SIDE_LATENCY + hw.IB_SWITCH_HOP_LATENCY
    cross = 2 * hw.IB_NIC_SIDE_LATENCY + 3 * hw.IB_SWITCH_HOP_LATENCY
    assert same == pytest.approx(2.8e-6)
    assert cross == pytest.approx(3.7e-6)
    same_roce = 2 * hw.ROCE_NIC_SIDE_LATENCY + hw.ROCE_SWITCH_HOP_LATENCY
    cross_roce = 2 * hw.ROCE_NIC_SIDE_LATENCY + 3 * hw.ROCE_SWITCH_HOP_LATENCY
    assert same_roce == pytest.approx(3.6e-6)
    assert cross_roce == pytest.approx(5.6e-6)
    assert hw.NVLINK_E2E_LATENCY == pytest.approx(3.33e-6)


def test_link_efficiency():
    assert 0 < hw.IB_CX7_400G.efficiency <= 1
    assert hw.IB_CX7_400G.efficiency == pytest.approx(0.8)


def test_with_nic_swaps_nic_only():
    node = hw.with_nic(hw.H800_NODE, hw.ROCE_400G)
    assert node.nic is hw.ROCE_400G
    assert node.gpu is hw.H800
    assert node.gpus_per_node == hw.H800_NODE.gpus_per_node


def test_switch_specs():
    assert hw.IB_SWITCH_400G_64P.ports == 64
    assert hw.ROCE_SWITCH_400G_128P.ports == 128
    # Section 5.2.1: RoCE switches trade latency for radix.
    assert hw.ROCE_SWITCH_400G_128P.latency > hw.IB_SWITCH_400G_64P.latency


def test_catalogs_contain_expected_entries():
    assert set(hw.GPU_CATALOG) >= {"H800", "H100", "GB200"}
    assert set(hw.NODE_CATALOG) >= {"H800", "GB200_NVL72"}
