"""The parallel sweep engine (repro.sweep): grids, cache, determinism.

The two engine guarantees the PR's acceptance criteria pin:

* a multi-point sweep at ``workers=N>1`` serializes byte-identically
  to the same sweep at ``workers=1`` (per-point seeds derive from
  point *content*, never from scheduling), and
* a warm-cache re-run of an unchanged sweep evaluates zero points.
"""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.sweep import (
    SweepCache,
    SweepSpec,
    canonical_config,
    grid,
    point_key,
    register_target,
    run_sweep,
    target_names,
)

#: In-process call counter for cache-behavior tests (workers=1 runs the
#: target in this process, so the module global observes every call).
CALLS = {"count": 0}


def _counting_target(config: dict, seed: int) -> dict:
    CALLS["count"] += 1
    return {"value": 2 * config["x"] + config.get("bias", 0), "seed": seed}


register_target("test_counting", _counting_target)

#: A fast serving scenario for the real-simulator tests.
SERVING_BASE = {"num_requests": 25, "output_mean": 32, "prompt_mean": 128}


def _counting_spec(**overrides) -> SweepSpec:
    defaults = dict(
        target="test_counting", points=grid(x=[1, 2, 3]), base={"bias": 1}, seed=5
    )
    defaults.update(overrides)
    return SweepSpec(**defaults)


# -- spec / grid ---------------------------------------------------------


def test_grid_is_the_cartesian_product_in_axis_order():
    points = grid(a=[1, 2], b=["x", "y"], c=9)
    assert points == [
        {"a": 1, "b": "x", "c": 9},
        {"a": 1, "b": "y", "c": 9},
        {"a": 2, "b": "x", "c": 9},
        {"a": 2, "b": "y", "c": 9},
    ]


def test_canonical_config_ignores_key_order_and_rejects_non_json():
    assert canonical_config({"a": 1, "b": 2}) == canonical_config({"b": 2, "a": 1})
    with pytest.raises(TypeError):
        canonical_config({"a": {1, 2}})


def test_point_key_changes_with_each_ingredient():
    base = point_key("t", {"x": 1}, 0, "1.0")
    assert point_key("t", {"x": 1}, 0, "1.0") == base
    assert point_key("t", {"x": 2}, 0, "1.0") != base
    assert point_key("t", {"x": 1}, 1, "1.0") != base
    assert point_key("t", {"x": 1}, 0, "1.1") != base
    assert point_key("u", {"x": 1}, 0, "1.0") != base


def test_empty_sweep_is_rejected():
    with pytest.raises(ValueError):
        SweepSpec(target="test_counting", points=[])


def test_builtin_targets_are_registered():
    assert {"serving", "flowsim", "training"} <= set(target_names())


# -- seed discipline -----------------------------------------------------


def test_point_seeds_depend_on_content_not_order():
    forward = _counting_spec()
    backward = _counting_spec(points=list(reversed(forward.points)))
    seeds_fwd = {canonical_config(c): forward.point_seed(c) for c in forward.configs()}
    seeds_bwd = {canonical_config(c): backward.point_seed(c) for c in backward.configs()}
    assert seeds_fwd == seeds_bwd
    assert len(set(seeds_fwd.values())) == len(seeds_fwd), "points must decorrelate"


def test_explicit_seed_in_config_wins():
    spec = _counting_spec(base={"bias": 1, "seed": 77})
    assert all(spec.point_seed(c) == 77 for c in spec.configs())


# -- cache behavior ------------------------------------------------------


def test_cache_hit_skips_evaluation_and_preserves_results(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    CALLS["count"] = 0
    cold = run_sweep(spec, cache=cache)
    assert CALLS["count"] == 3 and cold.evaluated == 3 and cold.cache_hits == 0
    warm = run_sweep(spec, cache=cache)
    assert CALLS["count"] == 3, "warm re-run must execute zero target evaluations"
    assert warm.evaluated == 0 and warm.cache_hits == 3
    assert warm.records() == cold.records()
    assert len(cache) == 3


def test_cache_misses_on_config_seed_and_version_change(tmp_path):
    cache = SweepCache(tmp_path)
    run_sweep(_counting_spec(), cache=cache)
    CALLS["count"] = 0
    # A changed config recomputes only the changed points...
    assert run_sweep(_counting_spec(base={"bias": 2}), cache=cache).evaluated == 3
    # ...a changed root seed recomputes (derived seeds moved)...
    assert run_sweep(_counting_spec(seed=6), cache=cache).evaluated == 3
    # ...and so does a version bump.
    assert run_sweep(_counting_spec(version="0.0.0-test"), cache=cache).evaluated == 3
    assert CALLS["count"] == 9


def test_incremental_rerun_recomputes_only_new_points(tmp_path):
    cache = SweepCache(tmp_path)
    run_sweep(_counting_spec(points=grid(x=[1, 2, 3])), cache=cache)
    CALLS["count"] = 0
    grown = run_sweep(_counting_spec(points=grid(x=[1, 2, 3, 4, 5])), cache=cache)
    assert grown.evaluated == 2 and grown.cache_hits == 3
    assert CALLS["count"] == 2
    assert [p.cached for p in grown.points] == [True, True, True, False, False]


def test_corrupted_cache_entry_is_recomputed_not_crashed(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec(points=[{"x": 4}])
    first = run_sweep(spec, cache=cache)
    path = cache.path_for(first.points[0].key)
    for garbage in ("not json {", json.dumps({"key": "wrong", "result": {}}), ""):
        path.write_text(garbage)
        CALLS["count"] = 0
        again = run_sweep(spec, cache=cache)
        assert CALLS["count"] == 1 and again.evaluated == 1
        assert again.records() == first.records()
        # The entry is repaired in place and serves the next run.
        assert cache.get(first.points[0].key) == first.points[0].result


def test_cache_entry_is_self_describing(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec(points=[{"x": 9}])
    result = run_sweep(spec, cache=cache)
    entry = json.loads(cache.path_for(result.points[0].key).read_text())
    assert entry["target"] == "test_counting"
    assert entry["config"] == {"bias": 1, "x": 9}
    assert entry["seed"] == result.points[0].seed
    assert entry["version"] == spec.version


# -- determinism across worker counts ------------------------------------


def test_worker_count_does_not_change_bytes():
    spec = SweepSpec(
        target="serving",
        points=grid(request_rate=[2.0, 6.0], mode=["colocated", "disaggregated"]),
        base=SERVING_BASE,
        seed=9,
    )
    serial = run_sweep(spec, workers=1, cache=None)
    fanned = run_sweep(spec, workers=3, cache=None)
    assert serial.to_json() == fanned.to_json()
    assert fanned.evaluated == 4


def test_custom_target_runs_in_worker_processes():
    # fork inherits the registry, so a target registered at test-module
    # import is callable from pool workers too.
    spec = _counting_spec(points=grid(x=[1, 2, 3, 4]))
    fanned = run_sweep(spec, workers=2, cache=None)
    assert [p.result["value"] for p in fanned.points] == [3, 5, 7, 9]


# -- target wiring -------------------------------------------------------


def test_serving_target_matches_direct_simulation():
    from repro.serving import ServingSimulator, SimConfig, WorkloadSpec, compact_record

    config = dict(SERVING_BASE, request_rate=3.0, mode="disaggregated", seed=4)
    [point] = run_sweep(
        SweepSpec(target="serving", points=[config]), cache=None
    ).points
    direct = compact_record(
        ServingSimulator(
            SimConfig(
                workload=WorkloadSpec(
                    request_rate=3.0, num_requests=25, output_mean=32, prompt_mean=128
                ),
                mode="disaggregated",
                seed=4,
            )
        ).run()
    )
    assert point.result == direct


def test_serving_target_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown serving sweep keys"):
        run_sweep(
            SweepSpec(target="serving", points=[{"no_such_knob": 1}]), cache=None
        )


def test_unknown_target_raises():
    with pytest.raises(KeyError, match="unknown sweep target"):
        run_sweep(SweepSpec(target="no-such-target", points=[{"x": 1}]), cache=None)


# -- observability -------------------------------------------------------


def test_sweep_emits_spans_counters_and_progress(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    run_sweep(spec, cache=cache)

    tracer, metrics = Tracer(), MetricsRegistry()
    run_sweep(spec, cache=cache, tracer=tracer, metrics=metrics)
    hits = [e for e in tracer.events if e.get("ph") == "i"]
    assert len(hits) == 3, "every cached point records an instant"
    assert metrics.counter("sweep.points").value == 3
    assert metrics.counter("sweep.cache_hits").value == 3
    assert metrics.counter("sweep.evaluated").value == 0
    assert metrics.gauge("sweep.progress").value == 1.0

    tracer2 = Tracer()
    run_sweep(_counting_spec(seed=8), tracer=tracer2, cache=None)
    spans = [e for e in tracer2.events if e.get("ph") == "X"]
    assert len(spans) == 3, "every evaluated point records a span"


# -- CLI -----------------------------------------------------------------


def test_cli_sweep_json_document(tmp_path, capsys):
    from repro.cli import main

    argv = [
        "sweep", "--target", "test_counting",
        "--grid", "x=1,2", "--set", "bias=3",
        "--cache-dir", str(tmp_path), "--json",
    ]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert [p["config"] for p in cold["points"]] == [
        {"bias": 3, "x": 1}, {"bias": 3, "x": 2},
    ]
    assert [p["result"]["value"] for p in cold["points"]] == [5, 7]
    assert cold["evaluated"] == 2 and cold["cache_hits"] == 0

    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["cache_hits"] == 2 and warm["evaluated"] == 0
    assert [p["result"] for p in warm["points"]] == [p["result"] for p in cold["points"]]


def test_cli_sweep_table_output(tmp_path, capsys):
    from repro.cli import main

    assert (
        main(
            ["sweep", "--target", "test_counting", "--grid", "x=1,2",
             "--cache-dir", str(tmp_path)]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "sweep 'test_counting'" in out
    assert "evaluated 2" in out


def test_cli_sweep_value_parsing():
    from repro.cli import _sweep_value

    assert _sweep_value("4") == 4 and isinstance(_sweep_value("4"), int)
    assert _sweep_value("4.5") == 4.5
    assert _sweep_value("true") is True and _sweep_value("False") is False
    assert _sweep_value("null") is None
    assert _sweep_value("colocated") == "colocated"


def test_cli_sweep_rejects_unknown_target_and_missing_grid(tmp_path):
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["sweep", "--target", "bogus", "--grid", "x=1"])
    with pytest.raises(SystemExit):
        main(["sweep", "--target", "test_counting", "--cache-dir", str(tmp_path)])


# -- error records, progress hook, interruption --------------------------


def _failing_target(config: dict, seed: int) -> dict:
    if config["x"] % 2 == 0:
        raise ValueError(f"bad point x={config['x']}")
    return {"value": config["x"]}


register_target("test_failing", _failing_target)


def test_strict_default_raises_the_original_exception():
    spec = SweepSpec(target="test_failing", points=grid(x=[1, 2]))
    with pytest.raises(ValueError, match="bad point x=2"):
        run_sweep(spec, cache=None)


def test_strict_false_yields_structured_error_records(tmp_path):
    cache = SweepCache(tmp_path)
    spec = SweepSpec(target="test_failing", points=grid(x=[1, 2, 3, 4]), seed=3)
    result = run_sweep(spec, cache=cache, strict=False)
    assert result.errors == 2 and result.evaluated == 4
    failed = [p for p in result.points if p.error is not None]
    assert [p.config["x"] for p in failed] == [2, 4]
    for p in failed:
        assert p.result is None
        assert p.error["target"] == "test_failing"
        assert p.error["config"] == canonical_config(p.config)
        assert p.error["seed"] == p.seed
        assert p.error["type"] == "ValueError"
        assert "bad point" in p.error["message"]
        assert "_failing_target" in p.error["traceback"]
    # The document carries the error records (and only for failures).
    doc = result.payload()
    assert [i for i, p in enumerate(doc["points"]) if "error" in p] == [1, 3]
    # Failed points are never cached: a warm re-run retries exactly them.
    again = run_sweep(spec, cache=cache, strict=False)
    assert again.cache_hits == 2 and again.evaluated == 2
    assert [p.config["x"] for p in again.points if not p.cached] == [2, 4]


def test_error_records_byte_identical_across_worker_counts():
    spec = SweepSpec(target="test_failing", points=grid(x=[1, 2, 3, 4]), seed=3)
    serial = run_sweep(spec, workers=1, cache=None, strict=False)
    fanned = run_sweep(spec, workers=3, cache=None, strict=False)
    assert serial.to_json() == fanned.to_json()


def test_on_point_reports_hits_and_evaluations_in_order(tmp_path):
    cache = SweepCache(tmp_path)
    run_sweep(_counting_spec(points=grid(x=[1, 2])), cache=cache)
    settled = []
    run_sweep(
        _counting_spec(points=grid(x=[1, 2, 3])),
        cache=cache,
        on_point=lambda p: settled.append((p.index, p.cached)),
    )
    assert settled == [(0, True), (1, True), (2, False)]


def test_interrupt_raises_and_the_cache_resumes(tmp_path):
    from repro.sweep import SweepInterrupted

    cache = SweepCache(tmp_path)
    CALLS["count"] = 0
    spec = _counting_spec()
    with pytest.raises(SweepInterrupted) as excinfo:
        run_sweep(spec, cache=cache, interrupt=lambda: CALLS["count"] >= 1)
    assert excinfo.value.done == 1 and excinfo.value.total == 3
    assert len(cache) == 1  # the completed point is durable
    resumed = run_sweep(spec, cache=cache)
    assert resumed.cache_hits == 1 and resumed.evaluated == 2


def test_report_payload_is_cache_independent(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    cold = run_sweep(spec, cache=cache)
    warm = run_sweep(spec, cache=cache)
    assert cold.to_json() != warm.to_json()  # provenance differs...
    assert cold.to_report_json() == warm.to_report_json()  # ...results don't
    assert "cached" not in warm.report_payload()["points"][0]


def test_get_many_matches_per_key_get(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    keys = [spec.key(c) for c in spec.configs()]
    # All-miss probe: every key None, no shard directories touched.
    assert cache.get_many(keys) == {k: None for k in keys}
    run_sweep(spec, cache=cache)
    got = cache.get_many(keys)
    assert got == {k: cache.get(k) for k in keys}
    assert all(v is not None for v in got.values())


def test_get_many_index_survives_own_puts_and_rescans_foreign_writes(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    configs = spec.configs()
    keys = [spec.key(c) for c in configs]
    cache.get_many(keys)  # warm the (empty) shard index
    # Our own put updates the index in place: no rescan needed.
    cache.put(keys[0], target=spec.target, config=configs[0],
              seed=spec.point_seed(configs[0]), version=spec.version,
              result={"value": 1})
    assert cache.get_many(keys)[keys[0]] == {"value": 1}
    # A foreign writer (second cache instance) bumps the shard mtime;
    # the next probe revalidates and sees the new entry.
    other = SweepCache(tmp_path)
    other.put(keys[1], target=spec.target, config=configs[1],
              seed=spec.point_seed(configs[1]), version=spec.version,
              result={"value": 2})
    assert cache.get_many(keys)[keys[1]] == {"value": 2}


def test_get_many_validates_entries_like_get(tmp_path):
    cache = SweepCache(tmp_path)
    spec = _counting_spec()
    run_sweep(spec, cache=cache)
    key = spec.key(spec.configs()[0])
    cache.path_for(key).write_text("{not json")
    fresh = SweepCache(tmp_path)  # no index: forces scandir + full get
    assert fresh.get_many([key])[key] is None  # corrupt entry is a miss
