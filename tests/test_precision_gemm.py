"""Emulated FP8 GEMM with Hopper FP22 accumulation (Section 3.1)."""

import numpy as np
import pytest

from repro.precision import (
    ACCUMULATION_MODES,
    E4M3,
    dequant_overhead_fraction,
    fp8_matmul,
    quantize_blocks,
    quantize_tensor,
    quantize_tiles,
    quantized_gemm,
    relative_error,
    tensor_core_partial,
)

from repro.core.rng import seeded_generator as RNG


def _case(m=32, k=512, n=32, seed=0):
    rng = RNG(seed)
    a = rng.normal(size=(m, k)).astype(np.float32)
    b = rng.normal(size=(k, n)).astype(np.float32) / np.sqrt(k)
    return a, b


def test_fp8_matmul_close_to_exact():
    a, b = _case()
    exact = a @ b
    out = fp8_matmul(a, b)
    assert relative_error(exact, out) < 0.05


def test_all_modes_run_and_agree_roughly():
    a, b = _case()
    outs = {m: fp8_matmul(a, b, accumulation=m) for m in ACCUMULATION_MODES}
    for m, out in outs.items():
        assert relative_error(outs["ideal"], out) < 0.01, m


def test_fp22_error_grows_with_k_promoted_does_not():
    """The §3.1.1 limitation: FP22 accumulation degrades on long K;
    DeepGEMM-style FP32 promotion (§3.1.2 suggestion) fixes it."""
    errs_fp22, errs_prom = [], []
    for k in (512, 4096):
        a, b = _case(k=k, seed=k)
        ideal = fp8_matmul(a, b, accumulation="ideal")
        errs_fp22.append(relative_error(ideal, fp8_matmul(a, b, accumulation="hopper_fp22")))
        errs_prom.append(
            relative_error(ideal, fp8_matmul(a, b, accumulation="hopper_promoted"))
        )
    assert errs_fp22[1] > 1.5 * errs_fp22[0]
    assert errs_prom[1] < 1.5 * errs_prom[0]
    assert errs_prom[1] < errs_fp22[1]


def test_tensor_core_partial_exact_mode():
    a, b = _case(k=128)
    out = tensor_core_partial(a[:, :128], b[:128], exact=True)
    assert np.allclose(out, a[:, :128].astype(np.float64) @ b[:128].astype(np.float64))


def test_tensor_core_partial_truncation_loses_low_bits():
    a, b = _case(k=128, seed=3)
    exact = tensor_core_partial(a[:, :128], b[:128], exact=True)
    hopper = tensor_core_partial(a[:, :128], b[:128])
    err = relative_error(exact, hopper)
    assert 0 < err < 1e-3  # small but nonzero truncation error


def test_tensor_core_partial_validations():
    with pytest.raises(ValueError):
        tensor_core_partial(np.zeros((2, 64)), np.zeros((32, 2)))
    with pytest.raises(ValueError):
        tensor_core_partial(np.zeros((2, 48)), np.zeros((48, 2)))  # not /32


def test_quantized_gemm_granularity_checks():
    a, b = _case(k=256)
    a_t = quantize_tiles(a, E4M3, 128)
    b_b = quantize_blocks(b, E4M3, 128)
    with pytest.raises(ValueError):
        quantized_gemm(b_b, b_b)
    with pytest.raises(ValueError):
        quantized_gemm(a_t, quantize_tensor(b))  # wrong granularity
    with pytest.raises(ValueError):
        quantized_gemm(a_t, quantize_blocks(b, E4M3, 64))  # tile mismatch


def test_quantized_gemm_rejects_unknown_mode():
    a, b = _case(k=128)
    with pytest.raises(ValueError):
        quantized_gemm(quantize_tiles(a, E4M3), quantize_blocks(b, E4M3), "fancy")


def test_quantized_gemm_shape_mismatch():
    a = quantize_tiles(np.zeros((4, 128), np.float32), E4M3)
    b = quantize_blocks(np.zeros((256, 4), np.float32), E4M3)
    with pytest.raises(ValueError):
        quantized_gemm(a, b)


def test_k_must_be_tile_multiple():
    a, b = _case(k=200)
    with pytest.raises(ValueError):
        fp8_matmul(a, b)


def test_fine_grained_scaling_protects_against_outliers():
    """Per-tile scales contain an activation outlier's blast radius."""
    a, b = _case(m=16, k=512, n=16, seed=7)
    a[0, 0] = 3e5
    exact = a @ b
    fine = fp8_matmul(a, b)
    # With a single per-tensor scale the outlier would crush everything
    # else into a few codes; emulate by scaling globally first.
    coarse_a = quantize_tensor(a, E4M3).dequantize()
    coarse = fp8_matmul(coarse_a, b)
    clean_rows = np.s_[1:, :]
    assert relative_error(exact[clean_rows], fine[clean_rows]) < relative_error(
        exact[clean_rows], coarse[clean_rows]
    )


def test_dequant_overhead_fraction():
    # 2 CUDA-core ops per 256 tensor-core FLOPs at tile 128.
    assert dequant_overhead_fraction(128) == pytest.approx(2 / 256)
    # Coarser granularity amortizes better (the hardware-support ask).
    assert dequant_overhead_fraction(512) < dequant_overhead_fraction(128)
    with pytest.raises(ValueError):
        dequant_overhead_fraction(0)
