"""Dual micro-batch overlap, SM contention, IBGDA, PCIe contention."""

import pytest

from repro.comm import (
    ARBITRATION_SCHEMES,
    CPU_PROXY,
    H800_COMM_SMS_TRAINING,
    IBGDA,
    StageTimes,
    ep_slowdown,
    gpu_idle_fraction,
    ibgda_speedup,
    layer_time,
    overlap_efficiency,
    shared_pipe_times,
    sm_compute_penalty,
    small_message_send_latency,
)

STAGES = StageTimes(
    attention_compute=100e-6,
    moe_compute=80e-6,
    dispatch_comm=60e-6,
    combine_comm=90e-6,
)


def test_stage_totals():
    assert STAGES.compute == pytest.approx(180e-6)
    assert STAGES.communication == pytest.approx(150e-6)


def test_dual_microbatch_overlaps_comm():
    """§2.3.1: with overlap, a layer costs max(compute, comm)."""
    assert layer_time(STAGES, dual_microbatch=True) == pytest.approx(180e-6)
    assert layer_time(STAGES, dual_microbatch=False) == pytest.approx(330e-6)


def test_overlap_efficiency_positive():
    eff = overlap_efficiency(STAGES)
    assert eff == pytest.approx(1 - 180 / 330)


def test_gpu_fully_utilized_when_compute_dominates():
    """§2.3.1: 'the GPU remains fully utilized at all times'."""
    assert gpu_idle_fraction(STAGES, dual_microbatch=True) == 0.0
    comm_heavy = StageTimes(50e-6, 50e-6, 120e-6, 120e-6)
    assert gpu_idle_fraction(comm_heavy, dual_microbatch=True) > 0


def test_sm_penalty_20_of_132():
    """§4.4.1: 20 of 132 SMs on communication slows compute ~18%."""
    penalty = sm_compute_penalty(H800_COMM_SMS_TRAINING, 132)
    assert penalty == pytest.approx(132 / 112)
    assert sm_compute_penalty(0, 132) == 1.0
    with pytest.raises(ValueError):
        sm_compute_penalty(132, 132)
    with pytest.raises(ValueError):
        sm_compute_penalty(-1, 132)


def test_rdma_offload_beats_sm_driven_comm():
    """§4.4.1: full-RDMA EP (IBGDA, 0 comm SMs) beats SM-driven comm."""
    sm_driven = layer_time(STAGES, comm_sms=20, total_sms=132)
    offloaded = layer_time(STAGES, comm_sms=0)
    assert offloaded < sm_driven


def test_ibgda_faster_than_cpu_proxy():
    assert IBGDA.first_message_latency() < CPU_PROXY.first_message_latency()
    assert ibgda_speedup(1) > 1
    # Many small messages: the single proxy thread serializes, GPU
    # threads parallelize (§5.2.3).
    assert ibgda_speedup(10_000) > 100


def test_ibgda_batch_time_monotonic():
    assert IBGDA.batch_time(1000) < IBGDA.batch_time(100_000)
    with pytest.raises(ValueError):
        IBGDA.batch_time(-1)


def test_small_message_send_latency_components():
    lat = small_message_send_latency(64, 2.8e-6, 40e9, control=IBGDA)
    assert lat == pytest.approx(IBGDA.first_message_latency() + 2.8e-6 + 64 / 40e9)
    with pytest.raises(ValueError):
        small_message_send_latency(-1, 1e-6, 40e9)


def test_contention_fair_sharing_halves_ep_bandwidth():
    """§4.5.1: concurrent KV transfers stretch EP completion."""
    result = shared_pipe_times(ep_bytes=1e9, kv_bytes=1e9, pipe_bandwidth=50e9)
    assert result.ep_time == pytest.approx(1e9 / 25e9)


def test_contention_priority_restores_ep():
    """§4.5.2: traffic prioritization removes the EP latency spike."""
    fair = ep_slowdown(1e9, 4e9, 50e9, scheme="fair")
    prio = ep_slowdown(1e9, 4e9, 50e9, scheme="priority")
    bulk = ep_slowdown(1e9, 4e9, 50e9, scheme="bulk_first")
    assert prio == pytest.approx(1.0)
    assert fair > 1.5
    assert bulk > fair


def test_contention_asymmetric_sizes():
    # EP smaller than KV: EP drains first at half bandwidth.
    r = shared_pipe_times(1e9, 9e9, 50e9, "fair")
    assert r.ep_time == pytest.approx(1e9 / 25e9)
    assert r.kv_time == pytest.approx(r.ep_time + 8e9 / 50e9)
    # KV smaller than EP.
    r2 = shared_pipe_times(9e9, 1e9, 50e9, "fair")
    assert r2.kv_time == pytest.approx(1e9 / 25e9)
    assert r2.ep_time == pytest.approx(r2.kv_time + 8e9 / 50e9)


def test_contention_validation():
    with pytest.raises(ValueError):
        shared_pipe_times(1, 1, 0)
    with pytest.raises(ValueError):
        shared_pipe_times(1, 1, 1, scheme="magic")
    assert set(ARBITRATION_SCHEMES) == {"fair", "priority", "bulk_first"}


def test_scaled_compute_preserves_comm():
    scaled = STAGES.scaled_compute(2.0)
    assert scaled.compute == pytest.approx(2 * STAGES.compute)
    assert scaled.communication == pytest.approx(STAGES.communication)
