"""Request-level serving simulator (repro.serving)."""

import math

import numpy as np
import pytest

from repro.core.rng import seeded_generator
from repro.inference.serving import ServingConfig, serving_point
from repro.serving import (
    COLOCATED,
    DISAGGREGATED,
    KVPoolConfig,
    MTPConfig,
    PagedKVPool,
    SchedulerConfig,
    ServingSimulator,
    SimConfig,
    StepCostModel,
    WorkloadSpec,
    kv_pool_blocks,
)


def _smoke_config(**overrides) -> SimConfig:
    workload = overrides.pop(
        "workload",
        WorkloadSpec(
            request_rate=4.0,
            num_requests=40,
            prompt_mean=256,
            prompt_cv=0.3,
            output_mean=64,
            output_cv=0.3,
        ),
    )
    return SimConfig(workload=workload, **overrides)


# -- workload generation --------------------------------------------------


def test_poisson_arrivals_match_rate():
    spec = WorkloadSpec(request_rate=5.0, num_requests=4000)
    from repro.serving import generate_requests

    requests = generate_requests(spec, seeded_generator(0))
    gaps = np.diff([0.0] + [r.arrival for r in requests])
    assert np.mean(gaps) == pytest.approx(1 / 5.0, rel=0.1)


def test_bursty_arrivals_have_higher_cv():
    from repro.serving import generate_requests

    poisson = WorkloadSpec(request_rate=5.0, num_requests=4000)
    bursty = WorkloadSpec(request_rate=5.0, num_requests=4000, arrival="bursty")
    gap_cv = []
    for spec in (poisson, bursty):
        requests = generate_requests(spec, seeded_generator(0))
        gaps = np.diff([0.0] + [r.arrival for r in requests])
        gap_cv.append(np.std(gaps) / np.mean(gaps))
    assert gap_cv[0] == pytest.approx(1.0, rel=0.1)  # Poisson: CV 1
    assert gap_cv[1] > 1.5  # hyperexponential burstiness

    # Mean rate is preserved by the mixture.
    mean_gap = np.mean(np.diff([r.arrival for r in generate_requests(bursty, seeded_generator(1))]))
    assert mean_gap == pytest.approx(1 / 5.0, rel=0.15)


def test_fixed_lengths_with_zero_cv():
    from repro.serving import generate_requests

    spec = WorkloadSpec(num_requests=10, prompt_mean=100, prompt_cv=0.0, output_mean=7, output_cv=0.0)
    for r in generate_requests(spec, seeded_generator(0)):
        assert r.prompt_tokens == 100
        assert r.output_tokens == 7


def test_workload_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(request_rate=0.0)
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="adversarial")
    with pytest.raises(ValueError):
        WorkloadSpec(burst_factor=0.5, arrival="bursty")


# -- paged KV pool --------------------------------------------------------


def test_paged_pool_allocate_extend_free():
    pool = PagedKVPool(KVPoolConfig(total_blocks=10, block_tokens=16))
    assert pool.allocate(1, 33)  # 3 blocks
    assert pool.used_blocks == 3
    assert pool.extend(1, 48)  # still 3 blocks
    assert pool.used_blocks == 3
    assert pool.extend(1, 49)  # 4th block
    assert pool.used_blocks == 4
    assert not pool.allocate(2, 16 * 7)  # 7 blocks > 6 free
    assert pool.allocate(2, 16 * 6)
    assert not pool.extend(1, 65)  # pool exhausted
    pool.free(2)
    assert pool.extend(1, 65)
    pool.free(1)
    assert pool.used_blocks == 0
    assert pool.peak_used == 10


def test_paged_pool_errors():
    pool = PagedKVPool(KVPoolConfig(total_blocks=4))
    pool.allocate(1, 10)
    with pytest.raises(ValueError):
        pool.allocate(1, 10)
    with pytest.raises(KeyError):
        pool.extend(2, 10)
    with pytest.raises(KeyError):
        pool.free(2)


def test_kv_pool_sizing_tracks_table1():
    from repro.model.config import DEEPSEEK_V3
    from repro.model.kvcache import kv_cache_bytes_per_token
    from repro.core.hardware import H800

    cfg = kv_pool_blocks(DEEPSEEK_V3, H800, num_gpus=2, ep_degree=256, block_tokens=64)
    tokens = cfg.total_blocks * cfg.block_tokens
    # Capacity in bytes stays below the 2-GPU HBM budget but above half
    # of it (KV dominates once weights shard over EP256).
    cap = tokens * kv_cache_bytes_per_token(DEEPSEEK_V3)
    assert cap < 2 * H800.hbm_bytes
    assert cap > H800.hbm_bytes


# -- determinism ----------------------------------------------------------


def test_same_seed_identical_reports():
    config = _smoke_config(mode=DISAGGREGATED, seed=7)
    first = ServingSimulator(config).run()
    second = ServingSimulator(config).run()
    assert first == second


def test_different_seeds_differ():
    first = ServingSimulator(_smoke_config(seed=1)).run()
    second = ServingSimulator(_smoke_config(seed=2)).run()
    assert first != second


# -- calibration against the closed forms ---------------------------------


def test_steady_state_tpot_matches_analytic():
    """The pinned contract: a saturated decode pool at fixed batch
    reproduces ``inference.serving``'s analytic TPOT within 5%."""
    decode_gpus = 1
    streams = 16  # = 2 micro-batches x per-device batch 4 x (1+1) GPUs
    workload = WorkloadSpec(
        request_rate=1000.0,  # everyone arrives at once: saturated pool
        num_requests=streams,
        prompt_mean=256,
        prompt_cv=0.0,
        output_mean=128,
        output_cv=0.0,
    )
    serving = ServingConfig(context_tokens=512)
    config = SimConfig(
        workload=workload,
        costs=StepCostModel(serving=serving),
        mode=COLOCATED,
        prefill_gpus=1,
        decode_gpus=decode_gpus,
        scheduler=SchedulerConfig(max_concurrent_per_gpu=2 * 4),
        context_bucket=512,
        seed=3,
    )
    simulator = ServingSimulator(config)
    report = simulator.run()
    assert report.completed == streams

    pool_gpus = 1 + decode_gpus
    per_device = math.ceil(streams / (2 * pool_gpus))
    analytic = serving_point(serving, per_device).tpot
    full_batch = [e for e in simulator.decode_batch_profile if e[0] == streams]
    assert full_batch, f"no full-batch steps in {simulator.decode_batch_profile}"
    _, steps, mean_step = full_batch[0]
    assert steps > 100
    assert abs(mean_step - analytic) / analytic < 0.05
    # Per-request TPOT sees the same steady state.
    assert abs(report.tpot.p50 - analytic) / analytic < 0.05


def test_mtp_speeds_up_decode():
    base = _smoke_config(seed=5)
    mtp = _smoke_config(
        costs=StepCostModel(mtp=MTPConfig(enabled=True, acceptance_rate=0.85)), seed=5
    )
    plain = ServingSimulator(base).run()
    spec = ServingSimulator(mtp).run()
    assert spec.tpot.p50 < plain.tpot.p50 / 1.5  # ~1.8x from §2.3.3
    assert spec.mtp_acceptance_measured == pytest.approx(0.85, abs=0.08)
    assert spec.tokens_generated == plain.tokens_generated  # same outputs


# -- KV pressure and preemption -------------------------------------------


def test_kv_exhaustion_preempts_and_recovers():
    workload = WorkloadSpec(
        request_rate=50.0,
        num_requests=24,
        prompt_mean=192,
        prompt_cv=0.0,
        output_mean=96,
        output_cv=0.0,
    )
    config = _smoke_config(
        workload=workload,
        kv_blocks_per_gpu=12,  # 8 GPUs x 12 blocks x 64 tokens: tight
        seed=11,
    )
    simulator = ServingSimulator(config)
    report = simulator.run()
    assert report.completed == 24
    assert report.preemptions > 0
    assert report.peak_kv_occupancy > 0.9
    assert not simulator.dropped
    # Preempted requests re-ran prefill yet still produced full outputs.
    assert report.tokens_generated == 24 * 96


def test_oversized_request_dropped_not_deadlocked():
    workload = WorkloadSpec(
        request_rate=10.0,
        num_requests=5,
        prompt_mean=10_000,
        prompt_cv=0.0,
        output_mean=8,
        output_cv=0.0,
    )
    config = _smoke_config(workload=workload, kv_blocks_per_gpu=4, block_tokens=64, seed=0)
    simulator = ServingSimulator(config)
    report = simulator.run()
    assert report.completed == 0
    assert len(simulator.dropped) == 5


# -- disaggregation -------------------------------------------------------


def test_disaggregation_cuts_decode_tail_at_equal_hardware():
    workload = WorkloadSpec(
        request_rate=6.0,
        num_requests=80,
        prompt_mean=1024,
        prompt_cv=0.5,
        output_mean=128,
        output_cv=0.5,
        arrival="bursty",
    )
    colocated = ServingSimulator(
        _smoke_config(workload=workload, mode=COLOCATED, seed=2)
    ).run()
    disaggregated = ServingSimulator(
        _smoke_config(workload=workload, mode=DISAGGREGATED, seed=2)
    ).run()
    assert colocated.completed == disaggregated.completed == 80
    assert disaggregated.tpot.p99 < colocated.tpot.p99


def test_config_validation():
    with pytest.raises(ValueError):
        SimConfig(mode="hybrid")
    with pytest.raises(ValueError):
        SimConfig(prefill_gpus=0)
    with pytest.raises(ValueError):
        SimConfig(kv_blocks_per_gpu=0)
    with pytest.raises(ValueError):
        MTPConfig(acceptance_rate=1.5)
    with pytest.raises(ValueError):
        SchedulerConfig(max_prefill_tokens=0)
    with pytest.raises(ValueError):
        StepCostModel(prefill_efficiency=0.0)


# -- report surface -------------------------------------------------------


def test_report_traces_and_rates_consistent():
    report = ServingSimulator(_smoke_config(seed=9)).run()
    assert report.completed == 40
    assert report.duration > 0
    assert report.throughput_tokens_per_s == pytest.approx(
        report.tokens_generated / report.duration
    )
    assert 0 <= report.slo_attainment <= 1
    assert report.queue_depth_trace and report.kv_occupancy_trace
    times = [t for t, _ in report.queue_depth_trace]
    assert times == sorted(times)
    assert all(0 <= v <= 1 for _, v in report.kv_occupancy_trace)
    assert report.ttft.p50 <= report.ttft.p99 <= report.ttft.max


# -- streaming vs record equivalence --------------------------------------


def test_streaming_matches_record_mode_exactly():
    """One event engine, two aggregation modes: every exact aggregate is
    identical, and the streaming latency stats equal a reference
    histogram fed the record run's per-request latencies."""
    from repro.obs.metrics import Histogram

    base = dict(
        workload=WorkloadSpec(request_rate=6.0, num_requests=300, arrival="bursty"),
        mode=DISAGGREGATED,
        seed=5,
    )
    recorder = ServingSimulator(SimConfig(record_requests=True, **base))
    rec = recorder.run()
    streamer = ServingSimulator(SimConfig(**base))
    stream = streamer.run()

    for field in (
        "completed",
        "tokens_generated",
        "duration",
        "preemptions",
        "decode_steps",
        "prefill_batches",
        "slo_attainment",
        "throughput_tokens_per_s",
        "goodput_requests_per_s",
        "max_queue_depth",
        "peak_kv_occupancy",
    ):
        assert getattr(stream, field) == getattr(rec, field), field
    # Running sums vs numpy pairwise summation differ only in the last
    # ulp; the means are otherwise the same exact sample sets.
    for field in ("mean_queue_depth", "mean_kv_occupancy"):
        assert getattr(stream, field) == pytest.approx(getattr(rec, field), rel=1e-12)

    # Record mode keeps per-request records; streaming keeps none.
    assert len(recorder.finished_requests) == rec.completed
    assert streamer.finished_requests == ()
    assert rec.degradation is None and stream.degradation is None

    ttft, tpot, e2e = Histogram("ttft"), Histogram("tpot"), Histogram("e2e")
    for request in recorder.finished_requests:  # finish order, like streaming
        ttft.observe(request.ttft)
        if request.has_tpot:
            tpot.observe(request.tpot)
        e2e.observe(request.e2e)
    for hist, stats in ((ttft, stream.ttft), (tpot, stream.tpot), (e2e, stream.e2e)):
        assert stats.mean == hist.mean
        assert stats.max == hist.max
        assert stats.p50 == hist.percentile(50)
        assert stats.p95 == hist.percentile(95)
        assert stats.p99 == hist.percentile(99)

    # Histogram percentiles track the exact (record-mode) ones closely:
    # ~1% bucket error at growth 1.02, plus the nearest-rank vs
    # linear-interpolation definition gap on finite samples.
    for exact, approx in ((rec.ttft, stream.ttft), (rec.e2e, stream.e2e)):
        for q in ("p50", "p95", "p99"):
            assert getattr(approx, q) == pytest.approx(getattr(exact, q), rel=0.05)
