"""Figure 4 multi-port NIC model and §5.2.2 incast isolation."""

import pytest

from repro.network import (
    BONDING_MODES,
    ISOLATION_SCHEMES,
    IncastScenario,
    MultiPortNic,
    bonding_speedup,
    max_two_layer_endpoints,
    message_time,
    victim_completion_time,
    victim_slowdown,
)

NIC = MultiPortNic(num_planes=4, port_bandwidth=50e9)


def test_bonded_ooo_approaches_k_fold_bandwidth():
    """Large messages: spraying over 4 planes is ~4x faster."""
    big = 64 << 20
    speedup = bonding_speedup(NIC, big)
    assert 3.5 < speedup <= 4.0


def test_small_messages_gain_little_from_bonding():
    """Latency-dominated sends don't benefit — and pay the skew."""
    speedup = bonding_speedup(NIC, 64)
    assert speedup < 1.1


def test_inorder_bonding_wastes_the_planes():
    """Without out-of-order placement, bonding degenerates: Figure 4's
    'necessitating native support for out-of-order placement'."""
    big = 16 << 20
    ooo = message_time(NIC, big, "bonded_ooo")
    inorder = message_time(NIC, big, "bonded_inorder")
    single = message_time(NIC, big, "single_port")
    assert ooo < single < inorder * 1.01
    assert inorder >= single  # reorder stalls only add


def test_message_time_monotone_in_size():
    sizes = [0, 4096, 1 << 20, 1 << 26]
    for mode in BONDING_MODES:
        times = [message_time(NIC, s, mode) for s in sizes]
        assert times == sorted(times)


def test_multiport_validation():
    with pytest.raises(ValueError):
        MultiPortNic(num_planes=0)
    with pytest.raises(ValueError):
        MultiPortNic(plane_latency_skew=1.0)
    with pytest.raises(ValueError):
        message_time(NIC, -1)
    with pytest.raises(ValueError):
        message_time(NIC, 64, "teleport")


def test_two_layer_scaling_claim():
    """§5.1: 64-port switches x 8 planes -> 16,384 endpoints on a
    two-layer network."""
    assert max_two_layer_endpoints(64, 8) == 16384
    with pytest.raises(ValueError):
        max_two_layer_endpoints(1, 8)


# --- incast -----------------------------------------------------------------

SCENARIO = IncastScenario()


def test_shared_queue_victim_waits_for_burst():
    t = victim_completion_time(SCENARIO, "shared_queue")
    assert t >= SCENARIO.burst_drain_time
    assert victim_slowdown(SCENARIO, "shared_queue") > 100


def test_voq_isolates_victim():
    """§5.2.2: VOQ assigns a dedicated queue per QP."""
    assert victim_slowdown(SCENARIO, "voq") == pytest.approx(2.0)


def test_priority_queue_sufficiency():
    """Enough priority queues isolate the victim; too few classes per
    queue degrade toward the shared-queue case."""
    good = victim_completion_time(
        SCENARIO, "priority_queues", num_priority_queues=8, num_traffic_classes=8
    )
    bad = victim_completion_time(
        SCENARIO, "priority_queues", num_priority_queues=2, num_traffic_classes=16
    )
    shared = victim_completion_time(SCENARIO, "shared_queue")
    assert good == pytest.approx(2 * SCENARIO.victim_serialization)
    assert good < bad <= shared * 1.01


def test_late_victim_sees_less_residual_burst():
    late = IncastScenario(victim_arrival_fraction=0.9)
    early = IncastScenario(victim_arrival_fraction=0.0)
    assert victim_completion_time(late, "shared_queue") < victim_completion_time(
        early, "shared_queue"
    )


def test_incast_validation():
    with pytest.raises(ValueError):
        IncastScenario(num_senders=0)
    with pytest.raises(ValueError):
        IncastScenario(victim_arrival_fraction=1.5)
    with pytest.raises(ValueError):
        victim_completion_time(SCENARIO, "psychic")
    with pytest.raises(ValueError):
        victim_completion_time(SCENARIO, "priority_queues", num_priority_queues=0)
