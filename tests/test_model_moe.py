"""DeepSeekMoE layer forward semantics."""

import numpy as np
import pytest

from repro.model import TINY_MLA_MOE, DeepSeekMoELayer, DenseFfn, ExpertWeights, swiglu

RNG = np.random.default_rng


def test_swiglu_shapes():
    rng = RNG(0)
    w_g = rng.normal(size=(8, 16)).astype(np.float32)
    w_u = rng.normal(size=(8, 16)).astype(np.float32)
    w_d = rng.normal(size=(16, 8)).astype(np.float32)
    out = swiglu(rng.normal(size=(5, 8)).astype(np.float32), w_g, w_u, w_d)
    assert out.shape == (5, 8)


def test_swiglu_zero_input_is_zero():
    e = ExpertWeights.create(8, 16, RNG(1))
    assert np.allclose(e(np.zeros((3, 8), np.float32)), 0.0)


def test_dense_ffn_preserves_shape():
    ffn = DenseFfn(16, 32, RNG(2))
    x = RNG(3).normal(size=(2, 5, 16)).astype(np.float32)
    assert ffn(x).shape == x.shape


def test_moe_layer_output_shape_and_finite():
    layer = DeepSeekMoELayer(TINY_MLA_MOE.moe, hidden_size=32, rng=RNG(4))
    x = RNG(5).normal(size=(2, 6, 32)).astype(np.float32)
    out = layer(x)
    assert out.shape == x.shape
    assert np.all(np.isfinite(out))


def test_moe_layer_records_routing_decision():
    layer = DeepSeekMoELayer(TINY_MLA_MOE.moe, hidden_size=32, rng=RNG(6))
    layer(RNG(7).normal(size=(1, 4, 32)).astype(np.float32))
    assert layer.last_decision is not None
    assert layer.last_decision.num_tokens == 4


def test_moe_layer_matches_manual_combine():
    """The layer must equal sum_k w_k * expert_k(x) + shared(x)."""
    moe = TINY_MLA_MOE.moe
    layer = DeepSeekMoELayer(moe, hidden_size=32, rng=RNG(8))
    x = RNG(9).normal(size=(5, 32)).astype(np.float32)
    out = layer(x)
    decision = layer.last_decision
    manual = np.zeros_like(x)
    for t in range(5):
        for slot in range(moe.experts_per_token):
            e = int(decision.expert_ids[t, slot])
            manual[t] += decision.weights[t, slot] * layer.routed_experts[e](x[t : t + 1])[0]
        for shared in layer.shared_experts:
            manual[t] += shared(x[t : t + 1])[0]
    assert np.allclose(out, manual, atol=1e-5)


def test_moe_token_independence():
    """Routing and output of a token must not depend on batch peers."""
    layer = DeepSeekMoELayer(TINY_MLA_MOE.moe, hidden_size=32, rng=RNG(10))
    x = RNG(11).normal(size=(6, 32)).astype(np.float32)
    full = layer(x)
    solo = np.concatenate([layer(x[i : i + 1]) for i in range(6)], axis=0)
    assert np.allclose(full, solo, atol=1e-5)


def test_moe_requires_valid_hidden_size():
    layer = DeepSeekMoELayer(TINY_MLA_MOE.moe, hidden_size=32, rng=RNG(12))
    with pytest.raises(ValueError):
        layer(RNG(13).normal(size=(3, 17)).astype(np.float32))
