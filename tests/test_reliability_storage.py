"""Checkpoint storage-plane model (3FS, §5.1) feeding the goodput math."""

import pytest

from repro.model import DEEPSEEK_V3, count_params
from repro.reliability import (
    checkpoint_state_bytes,
    checkpoint_write_time,
    cluster_mtbf,
    goodput_fraction,
    optimal_checkpoint_interval,
)


def test_v3_checkpoint_size_order_of_magnitude():
    """671B params x (BF16 weights + FP32 master + moments) ~ 9.6 TB."""
    size = checkpoint_state_bytes(count_params(DEEPSEEK_V3).total)
    assert 8e12 < size < 12e12


def test_write_time_scales_with_nodes():
    size = checkpoint_state_bytes(count_params(DEEPSEEK_V3).total)
    t256 = checkpoint_write_time(size, 256)
    t64 = checkpoint_write_time(size, 64)
    assert t64 == pytest.approx(4 * t256)
    # A 256-node cluster checkpoints V3 in about a second over 3FS.
    assert t256 < 2.0


def test_validation():
    with pytest.raises(ValueError):
        checkpoint_state_bytes(0)
    with pytest.raises(ValueError):
        checkpoint_write_time(1e12, 0)
    with pytest.raises(ValueError):
        checkpoint_write_time(1e12, 8, efficiency=0.0)


def test_fast_checkpoints_lift_goodput():
    """The storage plane's point: cheap checkpoints -> short optimal
    intervals -> less lost work per failure."""
    mtbf = cluster_mtbf(256)
    size = checkpoint_state_bytes(count_params(DEEPSEEK_V3).total)
    fast = checkpoint_write_time(size, 256)  # dedicated storage plane
    slow = 50 * fast  # checkpointing through a contended path
    g_fast = goodput_fraction(fast, 900.0, mtbf)
    g_slow = goodput_fraction(slow, 900.0, mtbf)
    assert g_fast > g_slow
    assert optimal_checkpoint_interval(fast, mtbf) < optimal_checkpoint_interval(
        slow, mtbf
    )
