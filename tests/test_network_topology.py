"""Topology core and fat-tree builders."""

import pytest

from repro.network import (
    ENDPOINT_LINK,
    INTERSWITCH_LINK,
    Topology,
    TopologySpec,
    ft2_from_radix,
    ft2_spec,
    ft3_spec,
    three_layer_fat_tree,
    two_layer_fat_tree,
)


def test_add_nodes_and_links():
    topo = Topology("t")
    topo.add_switch("s0")
    topo.add_host("h0")
    topo.add_link("h0", "s0", 1e9, ENDPOINT_LINK)
    assert topo.hosts == ["h0"]
    assert topo.switches == ["s0"]
    assert topo.bandwidth("h0", "s0") == 1e9


def test_link_validation():
    topo = Topology("t")
    topo.add_switch("s0")
    with pytest.raises(KeyError):
        topo.add_link("s0", "nope", 1e9, ENDPOINT_LINK)
    topo.add_switch("s1")
    with pytest.raises(ValueError):
        topo.add_link("s0", "s1", 0.0, INTERSWITCH_LINK)


def test_spec_counts_interswitch_only():
    topo = two_layer_fat_tree(num_leaves=4, hosts_per_leaf=2, num_spines=2)
    spec = topo.spec
    assert spec.endpoints == 8
    assert spec.switches == 6
    assert spec.links == 8  # 4 leaves x 2 spines


def test_spec_rejects_negative():
    with pytest.raises(ValueError):
        TopologySpec("bad", endpoints=-1, switches=0, links=0)


def test_ft2_full_scale_spec_matches_table3():
    spec = ft2_spec(64)
    assert spec.endpoints == 2048
    assert spec.switches == 96
    assert spec.links == 2048


def test_ft3_full_scale_spec_matches_table3():
    spec = ft3_spec(64)
    assert spec.endpoints == 65536
    assert spec.switches == 5120
    assert spec.links == 131072


def test_ft2_graph_small_instance_consistent_with_spec():
    topo = ft2_from_radix(8)
    spec = ft2_spec(8)
    assert topo.spec.endpoints == spec.endpoints == 32
    assert topo.spec.switches == spec.switches == 12
    assert topo.spec.links == spec.links == 32


def test_ft3_graph_small_instance_consistent_with_spec():
    topo = three_layer_fat_tree(4)
    spec = ft3_spec(4)
    assert topo.spec.endpoints == spec.endpoints == 16
    assert topo.spec.switches == spec.switches == 20
    assert topo.spec.links == spec.links == 32


def test_fat_trees_are_connected():
    assert ft2_from_radix(8).is_connected()
    assert three_layer_fat_tree(4).is_connected()


def test_radix_validation():
    topo = ft2_from_radix(8)
    topo.validate_radix(8)  # leaves use 4 hosts + 4 spines = 8 ports
    with pytest.raises(ValueError):
        topo.validate_radix(6)


def test_equal_cost_paths_through_all_spines():
    topo = ft2_from_radix(8)
    paths = topo.shortest_paths("h0", "h4")  # different leaves
    assert len(paths) == 4  # one per spine
    for p in paths:
        assert topo.switch_hops(p) == 3


def test_same_leaf_single_path():
    topo = ft2_from_radix(8)
    paths = topo.shortest_paths("h0", "h1")
    assert len(paths) == 1
    assert topo.switch_hops(paths[0]) == 1


def test_invalid_builders():
    with pytest.raises(ValueError):
        two_layer_fat_tree(0, 1, 1)
    with pytest.raises(ValueError):
        three_layer_fat_tree(5)
    with pytest.raises(ValueError):
        ft2_spec(7)
    with pytest.raises(ValueError):
        ft3_spec(0)
