"""MPFT / MRFT cluster builders and PXN path selection (Section 5.1)."""

import pytest

from repro.network import (
    build_mpft_cluster,
    build_mrft_cluster,
    direct_path,
    gpu_name,
    pxn_path,
    uses_nvlink_forwarding,
)
from repro.network.multiplane import pxn_relay


def test_gpu_naming():
    assert gpu_name(3, 5) == "n3g5"


def test_mpft_cluster_shape():
    c = build_mpft_cluster(4)
    assert c.num_gpus == 32
    assert len(c.gpus()) == 32
    assert c.scheme == "mpft"
    # 8 planes x (1 leaf) switches + 4 NVSwitches; no spines at 4 nodes.
    assert c.topology.is_connected()


def test_mpft_planes_are_network_disjoint():
    """Cross-plane GPUs connect only through NVLink forwarding."""
    c = build_mpft_cluster(4)
    path = direct_path(c, "n0g0", "n1g3")
    assert uses_nvlink_forwarding(c, path)


def test_mrft_cross_rail_has_network_path():
    """On MRFT the spines connect rails, so a pure-network path exists."""
    c = build_mrft_cluster(16)  # 2 leaf groups -> spines exist
    path = direct_path(c, "n0g0", "n1g3")
    # The shortest path may still prefer NVLink (3 hops); check that a
    # cross-rail network route exists at all by removing NVLink.
    import networkx as nx

    g = c.topology.graph.copy()
    g.remove_nodes_from([f"n{i}/nvsw" for i in range(16)])
    assert nx.has_path(g, "n0g0", "n1g3")


def test_mpft_cross_plane_requires_nvlink():
    import networkx as nx

    c = build_mpft_cluster(16)
    g = c.topology.graph.copy()
    g.remove_nodes_from([f"n{i}/nvsw" for i in range(16)])
    assert not nx.has_path(g, "n0g0", "n1g3")


def test_pxn_same_node_is_pure_nvlink():
    c = build_mpft_cluster(2)
    path = pxn_path(c, "n0g0", "n0g5")
    assert path == ["n0g0", "n0/nvsw", "n0g5"]


def test_pxn_same_plane_goes_straight_to_network():
    c = build_mpft_cluster(2)
    path = pxn_path(c, "n0g2", "n1g2")
    assert not uses_nvlink_forwarding(c, path)
    assert path[0] == "n0g2" and path[-1] == "n1g2"


def test_pxn_cross_plane_relays_on_destination_plane():
    c = build_mpft_cluster(2)
    path = pxn_path(c, "n0g0", "n1g5")
    assert path[:2] == ["n0g0", "n0/nvsw"]
    assert path[2] == "n0g5"  # relay GPU on the destination plane
    assert uses_nvlink_forwarding(c, path)


def test_pxn_relay_decomposition():
    c = build_mpft_cluster(2)
    prefix, net_src = pxn_relay(c, "n0g0", "n1g5")
    assert prefix == ["n0g0", "n0/nvsw"]
    assert net_src == "n0g5"
    prefix, net_src = pxn_relay(c, "n0g5", "n1g5")
    assert prefix == []
    assert net_src == "n0g5"


def test_pxn_relay_rejects_same_node():
    c = build_mpft_cluster(2)
    with pytest.raises(ValueError):
        pxn_relay(c, "n0g0", "n0g1")


def test_paths_reject_self():
    c = build_mpft_cluster(2)
    with pytest.raises(ValueError):
        pxn_path(c, "n0g0", "n0g0")
    with pytest.raises(ValueError):
        direct_path(c, "n0g0", "n0g0")


def test_builders_reject_zero_nodes():
    with pytest.raises(ValueError):
        build_mpft_cluster(0)
    with pytest.raises(ValueError):
        build_mrft_cluster(0)


def test_mpft_vs_mrft_same_endpoints():
    a, b = build_mpft_cluster(4), build_mrft_cluster(4)
    assert a.gpus() == b.gpus()


def test_nvlink_peer_lookup():
    c = build_mpft_cluster(2)
    assert c.nvlink_peer_on_plane("n1g0", 6) == "n1g6"
    assert c.same_node("n1g0", "n1g7")
    assert not c.same_node("n0g0", "n1g0")
