"""OpenMetrics exposition (repro.obs.openmetrics): golden text,
parse-back fidelity, bucket-based percentile recovery."""

import math

import numpy as np
import pytest

from repro.obs import (
    Histogram,
    MetricsRegistry,
    metric_name,
    parse_openmetrics,
    percentile_from_buckets,
    render_openmetrics,
)
from repro.obs.openmetrics import CONTENT_TYPE


def _registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("serving.requests_completed").inc(3)
    registry.gauge("serving.kv.occupancy").set(0.25)
    series = registry.series("serving.queue_depth")
    series.record(0.0, 1.0)
    series.record(1.0, 4.0)
    hist = registry.histogram("serving.ttft_s", growth=2.0)
    hist.observe(0.0)  # underflow bucket
    hist.observe(1.5)  # bucket index 0: (1, 2]
    hist.observe(3.0)  # bucket index 1: (2, 4]
    return registry


# -- golden exposition -----------------------------------------------------

_GOLDEN = """\
# TYPE serving_kv_occupancy gauge
# HELP serving_kv_occupancy serving.kv.occupancy
serving_kv_occupancy 0.25
# TYPE serving_queue_depth gauge
# HELP serving_queue_depth serving.queue_depth
serving_queue_depth 4
# TYPE serving_requests_completed counter
# HELP serving_requests_completed serving.requests_completed
serving_requests_completed_total 3
# TYPE serving_ttft_s histogram
# HELP serving_ttft_s serving.ttft_s
serving_ttft_s_bucket{le="0"} 1
serving_ttft_s_bucket{le="2"} 2
serving_ttft_s_bucket{le="4"} 3
serving_ttft_s_bucket{le="+Inf"} 3
serving_ttft_s_sum 4.5
serving_ttft_s_count 3
# EOF
"""


def test_golden_exposition():
    """The exact text format is API: scrapers depend on it."""
    assert render_openmetrics(_registry()) == _GOLDEN
    assert CONTENT_TYPE.startswith("application/openmetrics-text")


def test_multi_registry_labels_and_family_merge():
    server = MetricsRegistry()
    server.counter("points.settled").inc(5)
    job = MetricsRegistry()
    job.counter("points.settled").inc(2)
    text = render_openmetrics([(server, None), (job, {"job": "j0001"})])
    lines = text.splitlines()
    assert lines.count("# TYPE points_settled counter") == 1  # one family
    assert "points_settled_total 5" in lines
    assert 'points_settled_total{job="j0001"} 2' in lines
    assert lines[-1] == "# EOF"


def test_kind_collision_across_registries_is_an_error():
    a = MetricsRegistry()
    a.counter("x")
    b = MetricsRegistry()
    b.gauge("x")
    with pytest.raises(ValueError, match="both"):
        render_openmetrics([(a, None), (b, {"job": "j1"})])


def test_metric_name_sanitization_and_escaping():
    assert metric_name("serving.ttft_s") == "serving_ttft_s"
    assert metric_name("9lives") == "_9lives"
    registry = MetricsRegistry()
    registry.counter("weird.name-with%chars").inc()
    text = render_openmetrics([(registry, {"tag": 'a"b\\c\nd'})])
    parsed = parse_openmetrics(text)
    family = parsed["weird_name_with_chars"]
    assert family["help"] == "weird.name-with%chars"  # original preserved
    assert family["samples"][0]["labels"]["tag"] == 'a"b\\c\nd'  # round-trips


def test_empty_series_is_skipped():
    registry = MetricsRegistry()
    registry.series("quiet")
    text = render_openmetrics(registry)
    # TYPE/HELP are emitted, but there is no valueless sample line.
    assert not any(line.startswith("quiet") for line in text.splitlines())
    assert parse_openmetrics(text)["quiet"]["samples"] == []


# -- parse-back ------------------------------------------------------------


def test_parse_back_matches_snapshot():
    registry = _registry()
    parsed = parse_openmetrics(render_openmetrics(registry))
    snap = registry.snapshot()
    assert parsed["serving_requests_completed"]["type"] == "counter"
    assert parsed["serving_requests_completed"]["samples"][0] == {
        "suffix": "_total", "labels": {}, "value": snap["serving.requests_completed"],
    }
    assert parsed["serving_kv_occupancy"]["samples"][0]["value"] == snap["serving.kv.occupancy"]
    assert parsed["serving_queue_depth"]["samples"][0]["value"] == snap["serving.queue_depth"][-1][1]
    hist = parsed["serving_ttft_s"]
    by_suffix = {}
    for sample in hist["samples"]:
        by_suffix.setdefault(sample["suffix"], []).append(sample)
    assert by_suffix["_count"][0]["value"] == snap["serving.ttft_s"]["count"]
    assert by_suffix["_sum"][0]["value"] == pytest.approx(4.5)
    # Cumulative buckets are monotone and end at the total count.
    values = [s["value"] for s in by_suffix["_bucket"]]
    assert values == sorted(values) and values[-1] == 3
    bounds = [s["labels"]["le"] for s in by_suffix["_bucket"]]
    assert bounds[-1] == "+Inf"


def test_parse_rejects_undeclared_sample():
    with pytest.raises(ValueError, match="TYPE"):
        parse_openmetrics("mystery_total 3\n# EOF\n")


def test_bucket_percentiles_recover_histogram_estimates():
    rng = np.random.default_rng(7)
    samples = rng.lognormal(mean=-2.0, sigma=1.0, size=10_000)
    registry = MetricsRegistry()
    hist = registry.histogram("h", growth=1.02)
    for value in samples:
        hist.observe(float(value))
    parsed = parse_openmetrics(render_openmetrics(registry))
    for q in (50, 95, 99):
        recovered = percentile_from_buckets(parsed["h"]["samples"], q, growth=1.02)
        assert recovered == pytest.approx(hist.percentile(q), rel=0.02), q


def test_percentile_from_buckets_edge_cases():
    assert percentile_from_buckets([], 50) == 0.0
    only_inf = [{"suffix": "_bucket", "labels": {"le": "+Inf"}, "value": 0.0}]
    assert percentile_from_buckets(only_inf, 50) == 0.0
    underflow = [
        {"suffix": "_bucket", "labels": {"le": "0"}, "value": 3.0},
        {"suffix": "_bucket", "labels": {"le": "+Inf"}, "value": 3.0},
    ]
    assert percentile_from_buckets(underflow, 99) == 0.0  # all non-positive


def test_value_formatting():
    registry = MetricsRegistry()
    registry.gauge("nan").set(math.nan)
    registry.gauge("inf").set(math.inf)
    registry.gauge("neg").set(-math.inf)
    registry.gauge("frac").set(0.1)
    text = render_openmetrics(registry)
    assert "nan NaN" in text and "inf +Inf" in text and "neg -Inf" in text
    assert "frac 0.1" in text  # repr round-trip, not 0.10000000000000001
