"""Slim Fly, Dragonfly and the Table 3 cost model."""

import networkx as nx
import pytest

from repro.network import (
    CostModel,
    DragonflyParams,
    build_dragonfly,
    build_slimfly,
    dragonfly_spec,
    mpft_spec,
    slimfly_network_degree,
    slimfly_spec,
    table3_rows,
    table3_specs,
)


def test_slimfly_spec_q28_matches_table3():
    spec = slimfly_spec(28)
    assert spec.switches == 1568
    assert spec.endpoints == 32928
    assert spec.links == 32928


def test_slimfly_network_degree():
    assert slimfly_network_degree(28) == 42
    assert slimfly_network_degree(5) == 7


def test_slimfly_graph_q5_structure():
    topo = build_slimfly(5, with_hosts=False)
    assert len(topo.switches) == 50
    # Every router has network degree (3q - delta)/2 = 7.
    for s in topo.switches:
        assert topo.degree_of(s) == 7
    # MMS graphs have diameter 2.
    assert nx.diameter(topo.graph) == 2


def test_slimfly_graph_host_attachment():
    topo = build_slimfly(5)
    spec = slimfly_spec(5)
    assert len(topo.hosts) == spec.endpoints
    assert topo.spec.links == spec.links


def test_slimfly_rejects_nonprime_graph():
    with pytest.raises(ValueError):
        build_slimfly(6)
    with pytest.raises(ValueError):
        slimfly_spec(1)


def test_dragonfly_balanced_params():
    p = DragonflyParams.balanced(64, g=511)
    assert (p.p, p.a, p.h, p.g) == (16, 32, 16, 511)
    assert p.router_radix == 63


def test_dragonfly_spec_matches_table3():
    spec = dragonfly_spec(DragonflyParams.balanced(64, g=511))
    assert spec.switches == 16352
    assert spec.endpoints == 261632
    assert spec.links == 384272


def test_dragonfly_param_validation():
    with pytest.raises(ValueError):
        DragonflyParams(p=1, a=2, h=1, g=10)  # g > a*h + 1
    with pytest.raises(ValueError):
        DragonflyParams(p=0, a=2, h=1, g=2)
    with pytest.raises(ValueError):
        DragonflyParams.balanced(30)


def test_dragonfly_graph_small():
    params = DragonflyParams(p=1, a=2, h=1, g=3)  # max g = 3
    topo = build_dragonfly(params)
    assert len(topo.switches) == 6
    assert len(topo.hosts) == 6
    assert topo.is_connected()
    # Intra-group: 3 groups x 1 link; global: 3 pairs.
    assert topo.spec.links == 6


def test_table3_reproduction():
    rows = {r.spec.name: r for r in table3_rows()}
    paper = {
        "FT2": (2048, 96, 2048, 9, 4.39),
        "MPFT": (16384, 768, 16384, 72, 4.39),
        "FT3": (65536, 5120, 131072, 491, 7.5),
        "SF": (32928, 1568, 32928, 146, 4.4),
        "DF": (261632, 16352, 384272, 1522, 5.8),
    }
    for name, (ep, sw, links, cost_m, per_ep_k) in paper.items():
        row = rows[name]
        assert row.spec.endpoints == ep
        assert row.spec.switches == sw
        assert row.spec.links == links
        assert row.cost_musd == pytest.approx(cost_m, rel=0.02), name
        assert row.cost_per_endpoint_kusd == pytest.approx(per_ep_k, rel=0.03), name


def test_cost_orderings_of_table3():
    rows = {r.spec.name: r for r in table3_rows()}
    # FT3 is the most expensive per endpoint; FT2/MPFT the cheapest.
    assert rows["FT3"].cost_per_endpoint_kusd > rows["DF"].cost_per_endpoint_kusd
    assert rows["DF"].cost_per_endpoint_kusd > rows["SF"].cost_per_endpoint_kusd
    assert rows["MPFT"].cost_per_endpoint_kusd == pytest.approx(
        rows["FT2"].cost_per_endpoint_kusd
    )


def test_mpft_spec_is_8x_ft2():
    from repro.network import ft2_spec

    ft2, mpft = ft2_spec(64), mpft_spec(64)
    assert mpft.endpoints == 8 * ft2.endpoints
    assert mpft.switches == 8 * ft2.switches
    assert mpft.links == 8 * ft2.links


def test_cost_model_guards():
    model = CostModel()
    from repro.network import TopologySpec

    with pytest.raises(ValueError):
        model.per_endpoint(TopologySpec("x", 0, 1, 1))


def test_table3_specs_order():
    names = [s.name for s in table3_specs()]
    assert names == ["FT2", "MPFT", "FT3", "SF", "DF"]
