"""Flow-level simulator: max-min fairness and event simulation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    ENDPOINT_LINK,
    Flow,
    FlowSimulator,
    Topology,
    max_min_rates,
    two_layer_fat_tree,
)


def _line_topology(bandwidths):
    topo = Topology("line")
    topo.add_host("a")
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_host("b")
    names = ["a", "s0", "s1", "b"]
    for (x, y), bw in zip(zip(names[:-1], names[1:]), bandwidths):
        topo.add_link(x, y, bw, ENDPOINT_LINK)
    return topo


def test_flow_validation():
    with pytest.raises(ValueError):
        Flow("a", "b", -1.0, ["a", "b"])
    with pytest.raises(ValueError):
        Flow("a", "b", 1.0, ["a"])
    with pytest.raises(ValueError):
        Flow("a", "b", 1.0, ["b", "a"])


def test_single_flow_gets_bottleneck_bandwidth():
    topo = _line_topology([10e9, 5e9, 10e9])
    sim = FlowSimulator(topo)
    flow = Flow("a", "b", 5e9, ["a", "s0", "s1", "b"])
    result = sim.simulate([flow])
    assert result.rates[0] == pytest.approx(5e9)
    assert result.makespan == pytest.approx(1.0)


def test_two_flows_share_fairly():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flows = [
        Flow("a", "b", 10e9, ["a", "s0", "s1", "b"]),
        Flow("a", "b", 10e9, ["a", "s0", "s1", "b"]),
    ]
    result = sim.simulate(flows)
    assert result.rates[0] == pytest.approx(5e9)
    assert result.makespan == pytest.approx(2.0)


def test_short_flow_finishes_then_long_flow_speeds_up():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flows = [
        Flow("a", "b", 5e9, ["a", "s0", "s1", "b"]),  # done at t=1
        Flow("a", "b", 10e9, ["a", "s0", "s1", "b"]),  # 5 GB left, then 10GB/s
    ]
    result = sim.simulate(flows)
    assert result.completion[0] == pytest.approx(1.0)
    assert result.completion[1] == pytest.approx(1.5)


def test_opposite_directions_do_not_contend():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flows = [
        Flow("a", "b", 10e9, ["a", "s0", "s1", "b"]),
        Flow("b", "a", 10e9, ["b", "s1", "s0", "a"]),
    ]
    result = sim.simulate(flows)
    assert result.makespan == pytest.approx(1.0)


def test_latency_added_to_completion():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flow = Flow("a", "b", 10e9, ["a", "s0", "s1", "b"], latency=0.25)
    assert sim.simulate([flow]).completion[0] == pytest.approx(1.25)


def test_zero_size_flow_is_latency_only():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flow = Flow("a", "b", 0.0, ["a", "s0", "s1", "b"], latency=0.5)
    result = sim.simulate([flow])
    assert result.completion[0] == pytest.approx(0.5)


def test_unknown_edge_raises():
    topo = _line_topology([1e9, 1e9, 1e9])
    sim = FlowSimulator(topo)
    bad = Flow("a", "b", 1.0, ["a", "zz", "b"])
    with pytest.raises(KeyError):
        sim.simulate([bad])


def test_max_min_is_bottleneck_fair():
    # Classic example: two links; flow0 crosses both, flow1 only link A,
    # flow2 only link B.  Max-min: flow0 = 5, flow1 = 5, flow2 = 15.
    topo = Topology("y")
    for n in ("x", "y", "z"):
        topo.add_host(n)
    topo.add_link("x", "y", 10.0, ENDPOINT_LINK)
    topo.add_link("y", "z", 20.0, ENDPOINT_LINK)
    flows = {
        0: Flow("x", "z", 1.0, ["x", "y", "z"]),
        1: Flow("x", "y", 1.0, ["x", "y"]),
        2: Flow("y", "z", 1.0, ["y", "z"]),
    }
    caps = {("x", "y"): 10.0, ("y", "x"): 10.0, ("y", "z"): 20.0, ("z", "y"): 20.0}
    rates = max_min_rates(flows, caps)
    assert rates[0] == pytest.approx(5.0)
    assert rates[1] == pytest.approx(5.0)
    assert rates[2] == pytest.approx(15.0)


def test_mode_validation():
    topo = _line_topology([1e9, 1e9, 1e9])
    sim = FlowSimulator(topo)
    with pytest.raises(ValueError):
        sim.simulate([], mode="quantum")


def test_drain_mode_matches_event_for_symmetric_traffic():
    topo = two_layer_fat_tree(2, 4, 2, link_bandwidth=10e9)
    sim = FlowSimulator(topo)
    hosts = topo.hosts
    flows = []
    for s in hosts:
        for d in hosts:
            if s != d:
                path = min(topo.shortest_paths(s, d), key=len)
                flows.append(Flow(s, d, 1e9, path))
    event = sim.simulate(flows, mode="event")
    drain = sim.simulate(flows, mode="drain")
    assert drain.makespan == pytest.approx(event.makespan, rel=0.05)


def test_event_initial_rates_match_reference_solver():
    """The vectorized engine agrees with the dict-based definition."""
    import numpy as np

    rng = np.random.default_rng(11)
    topo = two_layer_fat_tree(2, 6, 2, link_bandwidth=25e9)
    hosts = topo.hosts
    flows = []
    for _ in range(40):
        s, d = rng.choice(hosts, size=2, replace=False)
        path = min(topo.shortest_paths(s, d), key=len)
        flows.append(Flow(s, d, float(rng.uniform(1e8, 1e9)), path))
    sim = FlowSimulator(topo)
    result = sim.simulate(flows)
    reference = max_min_rates(dict(enumerate(flows)), sim.capacities)
    assert set(result.rates) == set(reference)
    for idx, rate in reference.items():
        assert result.rates[idx] == pytest.approx(rate)


def test_large_all_to_all_wall_clock_regression():
    """500 flows across the fabric must simulate in seconds, not minutes.

    Before the incremental engine, every completion event re-solved the
    full allocation from dicts of sets — O(flows x links) per event,
    quadratic end to end — and the finished-flow rescan added another
    O(flows) pass per event.  The ceiling is deliberately generous (only
    a catastrophic regression trips it) but the pre-optimization code
    missed it by an order of magnitude.
    """
    import time

    import numpy as np

    rng = np.random.default_rng(2)
    topo = two_layer_fat_tree(4, 8, 4, link_bandwidth=40e9)
    hosts = topo.hosts
    flows = []
    for _ in range(500):
        s, d = rng.choice(hosts, size=2, replace=False)
        path = min(topo.shortest_paths(s, d), key=len)
        flows.append(Flow(s, d, float(rng.uniform(1e8, 1e9)), path))
    sim = FlowSimulator(topo)
    start = time.perf_counter()
    first = sim.simulate(flows)
    elapsed = time.perf_counter() - start
    assert elapsed < 10.0, f"event mode took {elapsed:.1f}s for 500 flows"
    assert len(first.completion) == len(flows)
    # Determinism: a fresh simulator reproduces the run exactly.
    second = FlowSimulator(topo).simulate(flows)
    assert second.makespan == first.makespan
    assert second.completion == first.completion
    assert second.rates == first.rates


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(1e6, 1e9), min_size=1, max_size=6),
    bw=st.floats(1e9, 100e9),
)
def test_conservation_single_link(sizes, bw):
    """All flows on one link: makespan == total bytes / capacity."""
    topo = Topology("one")
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", bw, ENDPOINT_LINK)
    sim = FlowSimulator(topo)
    flows = [Flow("a", "b", s, ["a", "b"]) for s in sizes]
    result = sim.simulate(flows)
    assert result.makespan == pytest.approx(sum(sizes) / bw, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 50))
def test_rates_never_exceed_capacity(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    topo = two_layer_fat_tree(2, 2, 2, link_bandwidth=10e9)
    hosts = topo.hosts
    flows = {}
    for i in range(6):
        s, d = rng.choice(hosts, size=2, replace=False)
        path = min(topo.shortest_paths(s, d), key=len)
        flows[i] = Flow(s, d, 1e9, path)
    sim = FlowSimulator(topo)
    rates = max_min_rates(flows, sim.capacities)
    per_edge: dict = {}
    for i, f in flows.items():
        for e in f.edges:
            per_edge[e] = per_edge.get(e, 0.0) + rates[i]
    for e, total in per_edge.items():
        assert total <= sim.capacities[e] * (1 + 1e-6)
