"""CLI: ``repro trace`` and ``serve-sim --json``."""

import json

import pytest

from repro.cli import main


def test_trace_serving_writes_valid_deterministic_chrome_trace(tmp_path, capsys):
    paths = [tmp_path / "a.trace.json", tmp_path / "b.trace.json"]
    for path in paths:
        assert main(["trace", "--scenario", "serving", "--smoke", "--out", str(path)]) == 0
    assert paths[0].read_bytes() == paths[1].read_bytes()
    events = json.loads(paths[0].read_text())
    assert isinstance(events, list) and events
    for event in events:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    assert any(e["ph"] == "X" for e in events)
    out = capsys.readouterr().out
    assert "span" in out and "metrics" in out
    assert "chrome://tracing" in out


@pytest.mark.parametrize("scenario", ["network", "training"])
def test_trace_other_scenarios_smoke(scenario, tmp_path, capsys):
    path = tmp_path / f"{scenario}.trace.json"
    assert main(["trace", "--scenario", scenario, "--smoke", "--out", str(path)]) == 0
    events = json.loads(path.read_text())
    assert any(e["ph"] == "X" for e in events)
    assert scenario in capsys.readouterr().out


def test_trace_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        main(["trace", "--scenario", "quantum"])


def test_serve_sim_json_is_machine_readable(capsys):
    assert main(["serve-sim", "--smoke", "--json", "--seed", "3"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["completed"] == 40
    assert set(report["ttft"]) == {"mean", "p50", "p95", "p99", "max"}
    assert report["throughput_tokens_per_s"] > 0
    # Traces serialize as JSON arrays of [time, value] pairs.
    assert isinstance(report["queue_depth_trace"], list)
    assert len(report["queue_depth_trace"][0]) == 2


def test_serve_sim_json_matches_table_run(capsys):
    assert main(["serve-sim", "--smoke", "--json", "--seed", "3"]) == 0
    first = json.loads(capsys.readouterr().out)
    assert main(["serve-sim", "--smoke", "--json", "--seed", "3"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert first == second
