"""Autograd engine: ops, gradients vs numerical differentiation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.autograd import (
    AdamW,
    SGD,
    Tensor,
    apply_rope,
    causal_mask_scores,
    concat,
    cross_entropy,
    embedding_lookup,
    fake_quant_tiles,
    log_softmax,
    rms_norm,
    softmax,
    where_constant,
)
from repro.precision import E4M3

RNG = np.random.default_rng


def _numerical_grad(fn, tensor, eps=1e-3):
    grad = np.zeros_like(tensor.data)
    flat = tensor.data.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        up = fn()
        flat[i] = old - eps
        down = fn()
        flat[i] = old
        gflat[i] = (up - down) / (2 * eps)
    return grad


def _check_grads(build_loss, params, atol=2e-3):
    loss = build_loss()
    loss.backward()
    for p in params:
        analytic = p.grad.copy()
        numeric = _numerical_grad(lambda: float(build_loss().data), p)
        assert np.allclose(analytic, numeric, atol=atol), np.abs(analytic - numeric).max()
        p.zero_grad()


def test_add_mul_broadcast_grads():
    a = Tensor.param(RNG(0).normal(size=(3, 4)).astype(np.float32))
    b = Tensor.param(RNG(1).normal(size=(4,)).astype(np.float32))
    _check_grads(lambda: ((a * b + b) ** 2.0).sum(), [a, b])


def test_matmul_grads_batched():
    a = Tensor.param(RNG(2).normal(size=(2, 3, 4)).astype(np.float32))
    b = Tensor.param(RNG(3).normal(size=(4, 5)).astype(np.float32))
    # Scaled loss keeps float32 central-difference noise below atol.
    _check_grads(lambda: ((a @ b) ** 2.0).sum() * 0.05, [a, b])


def test_division_and_rsub():
    a = Tensor.param(np.array([2.0, 4.0], np.float32))
    _check_grads(lambda: ((1.0 - a) / a).sum(), [a])


def test_reduction_grads():
    a = Tensor.param(RNG(4).normal(size=(3, 5)).astype(np.float32))
    _check_grads(lambda: (a.mean(axis=1) ** 2.0).sum(), [a])
    _check_grads(lambda: (a.sum(axis=0, keepdims=True) ** 2.0).sum(), [a])


def test_nonlinearity_grads():
    a = Tensor.param(RNG(5).normal(size=(6,)).astype(np.float32))
    _check_grads(lambda: a.sigmoid().sum(), [a])
    _check_grads(lambda: a.silu().sum(), [a])
    _check_grads(lambda: (a * a + 1.0).log().sum(), [a])
    _check_grads(lambda: (a * 0.3).exp().sum(), [a])


def test_reshape_transpose_getitem_grads():
    a = Tensor.param(RNG(6).normal(size=(2, 6)).astype(np.float32))
    _check_grads(lambda: (a.reshape(3, 4).transpose(1, 0)[1:] ** 2.0).sum(), [a])


def test_concat_grads():
    a = Tensor.param(RNG(7).normal(size=(2, 3)).astype(np.float32))
    b = Tensor.param(RNG(8).normal(size=(2, 2)).astype(np.float32))
    _check_grads(lambda: (concat([a, b], axis=1) ** 2.0).sum(), [a, b])


def test_embedding_grads_accumulate_repeats():
    table = Tensor.param(np.ones((4, 2), np.float32))
    idx = np.array([0, 0, 3])
    out = embedding_lookup(table, idx).sum()
    out.backward()
    assert table.grad[0, 0] == 2.0  # two lookups of row 0
    assert table.grad[3, 0] == 1.0
    assert table.grad[1, 0] == 0.0


def test_softmax_rows_sum_one_and_grads():
    x = Tensor.param(RNG(9).normal(size=(3, 4)).astype(np.float32))
    s = softmax(x)
    assert np.allclose(s.data.sum(axis=-1), 1.0, atol=1e-6)
    _check_grads(lambda: (softmax(x) ** 2.0).sum(), [x])


def test_log_softmax_matches_softmax():
    x = Tensor(RNG(10).normal(size=(2, 5)).astype(np.float32))
    assert np.allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-6)


def test_cross_entropy_value_and_grads():
    logits = Tensor.param(RNG(11).normal(size=(4, 6)).astype(np.float32))
    targets = np.array([0, 2, 5, 1])
    _check_grads(lambda: cross_entropy(logits, targets), [logits])


def test_cross_entropy_validation():
    with pytest.raises(ValueError):
        cross_entropy(Tensor(np.zeros((2, 3))), np.array([0, 1, 2]))


def test_rms_norm_grads_and_scale():
    x = Tensor.param(RNG(12).normal(size=(2, 8)).astype(np.float32))
    w = Tensor.param(np.ones(8, np.float32))
    out = rms_norm(x, w)
    assert np.allclose(np.sqrt((out.data**2).mean(-1)), 1.0, atol=1e-3)
    _check_grads(lambda: (rms_norm(x, w) ** 2.0).sum() * 0.1, [x, w], atol=5e-3)


def test_rope_matches_inference_implementation():
    from repro.model.attention import apply_rope as rope_np

    x = RNG(13).normal(size=(2, 3, 5, 8)).astype(np.float32)
    ours = apply_rope(Tensor(x), np.arange(5)).data
    reference = rope_np(x, np.arange(5))
    assert np.allclose(ours, reference, atol=1e-5)


def test_rope_grads():
    x = Tensor.param(RNG(14).normal(size=(1, 4, 6)).astype(np.float32))
    _check_grads(lambda: (apply_rope(x, np.arange(4)) ** 2.0).sum(), [x])


def test_causal_mask_blocks_future():
    scores = Tensor(np.zeros((1, 1, 3, 3), np.float32))
    masked = causal_mask_scores(scores)
    assert masked.data[0, 0, 0, 1] == -1e9
    assert masked.data[0, 0, 2, 1] == 0.0


def test_where_constant_grad_masks():
    x = Tensor.param(np.ones((2, 2), np.float32))
    mask = np.array([[True, False], [False, True]])
    out = where_constant(mask, 0.0, x).sum()
    out.backward()
    assert np.array_equal(x.grad, (~mask).astype(np.float32))


def test_fake_quant_straight_through():
    x = Tensor.param(RNG(15).normal(size=(2, 16)).astype(np.float32))
    out = fake_quant_tiles(x, E4M3, tile=16).sum()
    out.backward()
    assert np.allclose(x.grad, 1.0)  # gradients pass unchanged


def test_backward_requires_scalar_without_seed():
    x = Tensor.param(np.ones((2, 2), np.float32))
    with pytest.raises(ValueError):
        (x * 2).backward()


def test_grad_accumulates_across_backwards():
    x = Tensor.param(np.ones(3, np.float32))
    (x * 2).sum().backward()
    (x * 2).sum().backward()
    assert np.allclose(x.grad, 4.0)


def test_detach_cuts_graph():
    x = Tensor.param(np.ones(3, np.float32))
    y = (x * 3).detach()
    assert not y.requires_grad


def test_sgd_momentum_converges():
    w = Tensor.param(np.array([10.0], np.float32))
    opt = SGD([w], lr=0.1, momentum=0.5)
    for _ in range(100):
        loss = (w * w).sum()
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert abs(w.data[0]) < 1e-3


def test_adamw_weight_decay_shrinks():
    w = Tensor.param(np.array([5.0], np.float32))
    opt = AdamW([w], lr=0.1, weight_decay=0.5)
    for _ in range(50):
        loss = (w * 0.0).sum()  # zero gradient; only decay acts
        opt.zero_grad()
        loss.backward()
        opt.step()
    assert abs(w.data[0]) < 5.0 * (1 - 0.05) ** 40


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD([Tensor.param(np.ones(1))], lr=0.0)
    with pytest.raises(ValueError):
        SGD([Tensor(np.ones(1))], lr=0.1)  # nothing trainable
    with pytest.raises(ValueError):
        SGD([Tensor.param(np.ones(1))], lr=0.1, momentum=1.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 100), rows=st.integers(1, 4), cols=st.integers(1, 5))
def test_unbroadcast_roundtrip(seed, rows, cols):
    """x + 0-broadcast keeps gradient shape equal to x's shape."""
    x = Tensor.param(RNG(seed).normal(size=(rows, cols)).astype(np.float32))
    bias = Tensor.param(RNG(seed + 1).normal(size=(cols,)).astype(np.float32))
    (x + bias).sum().backward()
    assert x.grad.shape == (rows, cols)
    assert bias.grad.shape == (cols,)
    assert np.allclose(bias.grad, rows)
