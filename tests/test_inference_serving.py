"""Decode serving frontier (§2.3.1-2.3.2 combined model)."""

import pytest

from repro.inference import (
    ServingConfig,
    compute_comm_crossover_context,
    decode_stage_times,
    serving_point,
    throughput_latency_frontier,
)
from repro.model import TINY_DENSE_GQA


def _paper_config(**overrides):
    defaults = dict(nic_bandwidth=50e9, context_tokens=1, compute_efficiency=1.0)
    defaults.update(overrides)
    return ServingConfig(**defaults)


def test_comm_bound_regime_reproduces_paper_tpot():
    """At 32 tokens/device on a 50 GB/s fabric the model lands on the
    §2.3.2 limit (~14.8 ms with hidden 7000; ~15.1 ms with 7168)."""
    point = serving_point(_paper_config(), 32)
    assert point.bound == "communication"
    assert point.tpot == pytest.approx(15.11e-3, rel=0.01)
    assert 1 / point.tpot == pytest.approx(66, abs=2)


def test_comm_time_scales_inverse_bandwidth():
    slow = serving_point(_paper_config(nic_bandwidth=40e9), 32)
    fast = serving_point(_paper_config(nic_bandwidth=80e9), 32)
    assert slow.stages.communication == pytest.approx(2 * fast.stages.communication)


def test_gb200_fabric_moves_bound_to_compute():
    """The paper's GB200 figure is 'purely theoretical': with a 900 GB/s
    fabric, communication stops being the binding constraint."""
    point = serving_point(_paper_config(nic_bandwidth=900e9), 32)
    assert point.bound == "compute"
    assert point.stages.communication < point.stages.compute


def test_long_context_shifts_bound_to_compute():
    """§2.3.2's caveat: 'request contexts are often much longer, and
    MLA computations typically dominate'."""
    config = ServingConfig(context_tokens=2048)
    crossover = compute_comm_crossover_context(
        config, 32, [1024, 4096, 16384, 65536]
    )
    assert crossover is not None
    short = serving_point(ServingConfig(context_tokens=1024), 32)
    long = serving_point(ServingConfig(context_tokens=65536), 32)
    assert long.stages.attention_compute > short.stages.attention_compute
    assert long.bound == "compute"


def test_throughput_rises_with_batch_in_compute_floor():
    """Small batches sit on the weight-streaming floor; batching
    amortizes it until communication binds."""
    frontier = throughput_latency_frontier(ServingConfig(context_tokens=512), [4, 16, 64])
    throughputs = [p.throughput_per_gpu for p in frontier]
    assert throughputs[1] > throughputs[0]
    # TPOT monotonically worsens with batch once comm-bound.
    assert frontier[-1].tpot > frontier[0].tpot


def test_combine_is_twice_dispatch():
    stages = decode_stage_times(ServingConfig(), 32)
    assert stages.combine_comm == pytest.approx(2 * stages.dispatch_comm)


def test_dispatch_matches_closed_form():
    cfg = ServingConfig(nic_bandwidth=40e9)
    stages = decode_stage_times(cfg, 32)
    expected = 32 * 9 * 7168 * 1.0 / 40e9
    assert stages.dispatch_comm == pytest.approx(expected)


def test_validation():
    with pytest.raises(ValueError):
        ServingConfig(model=TINY_DENSE_GQA)  # dense model: no EP
    with pytest.raises(ValueError):
        ServingConfig(nic_bandwidth=0)
    with pytest.raises(ValueError):
        ServingConfig(ep_degree=0)
    with pytest.raises(ValueError):
        serving_point(ServingConfig(), 0)
    with pytest.raises(ValueError):
        throughput_latency_frontier(ServingConfig(), [])


def test_ep_degree_controls_weight_traffic():
    """Fewer experts per GPU -> less weight streaming -> faster MoE."""
    dense_ep = decode_stage_times(ServingConfig(ep_degree=8, context_tokens=128), 4)
    sparse_ep = decode_stage_times(ServingConfig(ep_degree=256, context_tokens=128), 4)
    assert sparse_ep.moe_compute < dense_ep.moe_compute
