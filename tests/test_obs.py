"""Observability layer (repro.obs): metrics, tracer, simulator wiring."""

import json

import numpy as np
import pytest

from repro.network import ENDPOINT_LINK, Flow, FlowSimulator, Topology
from repro.obs import (
    NULL_TRACER,
    Counter,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
    NullTracer,
    TimeSeries,
    Tracer,
)
from repro.serving import KV_OCCUPANCY, QUEUE_DEPTH, ServingSimulator, SimConfig, WorkloadSpec


def _smoke_config(**overrides) -> SimConfig:
    workload = overrides.pop(
        "workload",
        WorkloadSpec(
            request_rate=4.0,
            num_requests=40,
            prompt_mean=256,
            prompt_cv=0.3,
            output_mean=64,
            output_cv=0.3,
        ),
    )
    return SimConfig(workload=workload, **overrides)


# -- metrics registry ------------------------------------------------------


def test_counter_gauge_series_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(2.5)
    registry.gauge("g").set(7)
    registry.series("s").record(0.0, 1.0)
    registry.series("s").record(1.0, 3.0)
    snap = registry.snapshot()
    assert snap["c"] == 3.5
    assert snap["g"] == 7.0
    assert snap["s"] == [[0.0, 1.0], [1.0, 3.0]]
    assert "c" in registry and "missing" not in registry


def test_counter_rejects_decrement():
    with pytest.raises(ValueError):
        Counter("c").inc(-1)


def test_registry_rejects_kind_change():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(TypeError):
        registry.gauge("x")


def test_registry_rows_and_snapshot_cover_all_kinds():
    registry = MetricsRegistry()
    registry.counter("a").inc()
    registry.gauge("b").set(1.0)
    registry.series("c").record(0.0, 0.0)
    registry.histogram("d").observe(1.0)
    rows = registry.rows()
    assert [r[1] for r in rows] == ["counter", "gauge", "series", "histogram"]
    assert set(registry.snapshot()) == {"a", "b", "c", "d"}


# -- streaming histogram ---------------------------------------------------


@pytest.mark.parametrize("dist", ["lognormal", "uniform", "exponential"])
def test_histogram_percentiles_match_numpy(dist):
    rng = np.random.default_rng(42)
    samples = {
        "lognormal": rng.lognormal(mean=-2.0, sigma=1.2, size=20_000),
        "uniform": rng.uniform(0.5, 50.0, size=20_000),
        "exponential": rng.exponential(3.0, size=20_000),
    }[dist]
    hist = Histogram("h", growth=1.02)
    for value in samples:
        hist.observe(float(value))
    for q in (50, 90, 95, 99):
        exact = float(np.percentile(samples, q))
        estimate = hist.percentile(q)
        # Geometric buckets bound the relative error by ~sqrt(growth)-1;
        # allow 2% for rank discretization on top.
        assert abs(estimate - exact) / exact < 0.02, (q, estimate, exact)
    assert hist.count == len(samples)
    assert hist.mean == pytest.approx(float(np.mean(samples)))
    assert hist.max == pytest.approx(float(np.max(samples)))


def test_histogram_zero_and_extremes():
    hist = Histogram("h")
    assert hist.percentile(50) == 0.0  # empty
    for _ in range(90):
        hist.observe(0.0)
    for _ in range(10):
        hist.observe(5.0)
    assert hist.percentile(50) == 0.0
    assert hist.percentile(99) == pytest.approx(5.0, rel=0.02)
    assert hist.min == 0.0 and hist.max == 5.0
    with pytest.raises(ValueError):
        hist.percentile(101)
    with pytest.raises(ValueError):
        Histogram("h", growth=1.0)


def test_histogram_percentile_edges_are_exact():
    hist = Histogram("h")
    for value in (0.5, 2.0, 8.0):
        hist.observe(value)
    assert hist.percentile(0) == 0.5  # exact tracked min, not a bucket bound
    assert hist.percentile(100) == 8.0  # exact tracked max
    assert Histogram("h").percentile(0) == 0.0
    assert Histogram("h").percentile(100) == 0.0


def test_histogram_merge_matches_single_stream():
    rng = np.random.default_rng(5)
    samples = rng.lognormal(mean=-2.0, sigma=1.0, size=12_000)
    whole = Histogram("h", growth=1.02)
    parts = [Histogram("h", growth=1.02) for _ in range(4)]
    for i, value in enumerate(samples):
        whole.observe(float(value))
        parts[i % 4].observe(float(value))
    merged = parts[0]
    for part in parts[1:]:
        merged.merge(part)
    assert merged.count == whole.count
    assert merged.mean == pytest.approx(whole.mean)
    assert merged.min == whole.min and merged.max == whole.max
    assert merged.bucket_counts() == whole.bucket_counts()
    for q in (50, 95, 99):
        exact = float(np.percentile(samples, q))
        assert abs(merged.percentile(q) - exact) / exact < 0.02, q


def test_histogram_merge_rejects_mismatched_growth():
    with pytest.raises(ValueError):
        Histogram("h", growth=1.02).merge(Histogram("h", growth=1.1))


def test_histogram_dict_round_trip():
    hist = Histogram("h", growth=1.05)
    for value in (0.0, 0.001, 0.5, 0.5, 12.0):
        hist.observe(value)
    clone = Histogram.from_dict(hist.to_dict())
    assert clone.to_dict() == hist.to_dict()
    for q in (0, 50, 99, 100):
        assert clone.percentile(q) == hist.percentile(q)


def test_histogram_summary_json_round_trip():
    hist = Histogram("h")
    rng = np.random.default_rng(1)
    for value in rng.exponential(0.05, size=2_000):
        hist.observe(float(value))
    summary = hist.summary()
    payload = json.loads(json.dumps(summary.asdict(), sort_keys=True))
    assert HistogramSummary.from_dict(payload) == summary


def test_timeseries_ring_mode_keeps_tail():
    series = TimeSeries("s", max_points=8, mode="ring")
    for i in range(100):
        series.record(float(i), float(i) * 2)
    samples = series.samples
    assert len(samples) == 8
    assert samples[0] == (92.0, 184.0) and samples[-1] == (99.0, 198.0)


def test_timeseries_decimate_mode_spans_full_range():
    series = TimeSeries("s", max_points=16, mode="decimate")
    for i in range(1_000):
        series.record(float(i), float(i))
    samples = series.samples
    assert len(samples) <= 16
    assert samples[0][0] == 0.0  # decimation keeps the head ...
    # ... and the newest kept sample trails the newest record by at
    # most one stride (stride doubles to stay under max_points).
    assert samples[-1][0] >= 999.0 - 2 * (999.0 / len(samples))


def test_timeseries_default_is_exact_and_modes_validate():
    series = TimeSeries("s")
    for i in range(10_000):
        series.record(float(i), 0.0)
    assert len(series.samples) == 10_000
    with pytest.raises(ValueError):
        TimeSeries("s", max_points=4, mode="nope")
    with pytest.raises(ValueError):
        TimeSeries("s", max_points=0, mode="ring")


def test_registry_series_accepts_bounds():
    registry = MetricsRegistry()
    bounded = registry.series("s", max_points=4, mode="ring")
    for i in range(32):
        bounded.record(float(i), float(i))
    assert len(registry.snapshot()["s"]) == 4


def test_histogram_summary_is_ordered():
    hist = Histogram("h")
    rng = np.random.default_rng(0)
    for value in rng.exponential(1.0, size=5_000):
        hist.observe(float(value))
    s = hist.summary()
    assert 0 < s.p50 <= s.p95 <= s.p99 <= s.max
    assert s.count == 5_000


# -- tracer ----------------------------------------------------------------


def test_tracer_events_are_valid_chrome_trace(tmp_path):
    tracer = Tracer()
    tracer.process(1, "pool")
    tracer.thread(1, 0, "steps")
    tracer.complete("work", "step", 1, 0, 0.5, 0.25, args={"batch": 3})
    tracer.instant("mark", "step", 1, 0, 1.0)
    tracer.counter("depth", 1, 1.0, {"requests": 2})
    path = tracer.write(tmp_path / "t.trace.json")
    events = json.loads(path.read_text())
    assert isinstance(events, list) and len(events) == 5
    for event in events:
        assert {"name", "ph", "ts", "pid", "tid"} <= set(event)
    spans = [e for e in events if e["ph"] == "X"]
    assert spans[0]["ts"] == pytest.approx(0.5e6)  # seconds -> microseconds
    assert spans[0]["dur"] == pytest.approx(0.25e6)


def test_tracer_span_rows_rank_by_total_time():
    tracer = Tracer()
    for _ in range(3):
        tracer.complete("short", "c", 1, 0, 0.0, 1.0)
    tracer.complete("long", "c", 1, 0, 0.0, 10.0)
    rows = tracer.span_rows(top_k=1)
    assert rows == [["long", 1, 10.0, 10.0, 10.0]]
    rows = tracer.span_rows()
    assert [r[0] for r in rows] == ["long", "short"]
    assert rows[1][1:] == [3, 3.0, 1.0, 1.0]


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    assert not tracer.enabled and NULL_TRACER.enabled is False
    tracer.process(1, "p")
    tracer.thread(1, 0, "t")
    tracer.complete("a", "b", 1, 0, 0.0, 1.0)
    tracer.instant("a", "b", 1, 0, 0.0)
    tracer.counter("a", 1, 0.0, {"v": 1})
    assert tracer.events == []
    assert tracer.export() == []
    assert tracer.span_rows() == []


# -- serving simulator wiring ---------------------------------------------


def test_serving_trace_is_deterministic(tmp_path):
    paths = []
    for i in (1, 2):
        tracer = Tracer()
        ServingSimulator(_smoke_config(mode="disaggregated", seed=7), tracer=tracer).run()
        paths.append(tracer.write(tmp_path / f"run{i}.trace.json"))
    first, second = (p.read_bytes() for p in paths)
    assert first == second
    events = json.loads(first)
    assert {"name", "ph", "ts", "pid", "tid"} <= set(events[0])
    names = {e["name"] for e in events}
    assert {"queued", "prefill", "kv_transfer", "decode", "decode_step", "finish"} <= names
    pools = {
        e["args"]["name"] for e in events if e["name"] == "process_name"
    }
    assert pools == {"pool:prefill", "pool:decode", "requests"}


def test_instrumentation_does_not_perturb_simulation():
    config = _smoke_config(seed=3)
    plain = ServingSimulator(config).run()
    traced = ServingSimulator(config, tracer=Tracer()).run()
    assert plain == traced


def test_simulator_metrics_registry_matches_report():
    simulator = ServingSimulator(_smoke_config(seed=9))
    report = simulator.run()
    snap = simulator.metrics.snapshot()
    assert snap["serving.requests_completed"] == report.completed
    assert snap["serving.decode_steps"] == report.decode_steps
    assert snap["serving.prefill_batches"] == report.prefill_batches
    assert snap["serving.preemptions"] == report.preemptions
    # The report's traces are the registry's generic channels.
    assert [tuple(s) for s in snap[QUEUE_DEPTH]] == list(report.queue_depth_trace)
    assert [tuple(s) for s in snap[KV_OCCUPANCY]] == list(report.kv_occupancy_trace)


def test_preemption_emits_instants():
    workload = WorkloadSpec(
        request_rate=50.0,
        num_requests=24,
        prompt_mean=192,
        prompt_cv=0.0,
        output_mean=96,
        output_cv=0.0,
    )
    tracer = Tracer()
    report = ServingSimulator(
        _smoke_config(workload=workload, kv_blocks_per_gpu=12, seed=11), tracer=tracer
    ).run()
    assert report.preemptions > 0
    preempts = [e for e in tracer.events if e["name"] == "preempt"]
    assert len(preempts) == report.preemptions


# -- network simulator wiring ---------------------------------------------


def _line_topology(bandwidths):
    topo = Topology("line")
    topo.add_host("a")
    topo.add_switch("s0")
    topo.add_switch("s1")
    topo.add_host("b")
    names = ["a", "s0", "s1", "b"]
    for (x, y), bw in zip(zip(names[:-1], names[1:]), bandwidths):
        topo.add_link(x, y, bw, ENDPOINT_LINK)
    return topo


def test_flowsim_emits_flow_spans_and_utilization():
    topo = _line_topology([10e9, 10e9, 10e9])
    tracer = Tracer()
    sim = FlowSimulator(topo, tracer=tracer)
    flows = [
        Flow("a", "b", 10e9, ["a", "s0", "s1", "b"], tag="big"),
        Flow("a", "b", 5e9, ["a", "s0", "s1", "b"]),
    ]
    result = sim.simulate(flows)
    spans = {e["name"]: e for e in tracer.events if e["ph"] == "X"}
    assert set(spans) == {"big", "a->b"}
    assert spans["big"]["dur"] == pytest.approx(result.completion[0] * 1e6)
    snap = sim.metrics.snapshot()
    assert snap["network.flows"] == 2
    assert snap["network.flow_time_s"]["count"] == 2
    # Two equal-demand flows saturate the shared links: utilization 1.
    assert snap["network.link_utilization.mean"][0][1] == pytest.approx(1.0)
    utils = [e for e in tracer.events if e["name"] == "link_utilization"]
    assert utils and utils[0]["args"]["max"] == pytest.approx(1.0)


def test_flowsim_metrics_fresh_per_simulate():
    topo = _line_topology([10e9, 10e9, 10e9])
    sim = FlowSimulator(topo)
    flow = [Flow("a", "b", 1e9, ["a", "s0", "s1", "b"])]
    sim.simulate(flow)
    sim.simulate(flow)
    assert sim.metrics.snapshot()["network.flows"] == 1


# -- trainer wiring --------------------------------------------------------


def test_trainer_records_steps_and_losses():
    from repro.model.config import TINY_MLA_MOE
    from repro.training import TrainableTransformer, markov_corpus, train

    corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 1_000, seed=0)
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    tracer = Tracer()
    result = train(model, corpus, steps=3, tracer=tracer)
    snap = result.metrics.snapshot()
    assert snap["train.steps"] == 3
    assert snap["train.step_seconds"]["count"] == 3
    assert [v for _, v in snap["train.loss"]] == result.losses
    steps = [e for e in tracer.events if e["ph"] == "X" and e["name"] == "step"]
    assert len(steps) == 3
    assert steps[0]["args"]["loss"] == pytest.approx(result.losses[0])


def test_snapshot_is_deterministic_on_a_seeded_run():
    """Two identically-seeded simulations must export byte-identical
    registry snapshots — the SSE metric frames and summary tables the
    experiment service builds on both consume snapshot()."""
    snaps = []
    for _ in range(2):
        simulator = ServingSimulator(_smoke_config(seed=11))
        simulator.run()
        snaps.append(json.dumps(simulator.metrics.snapshot(), sort_keys=True))
    assert snaps[0] == snaps[1]


def test_rows_derive_from_snapshot():
    registry = MetricsRegistry()
    registry.counter("c").inc(3)
    registry.gauge("g").set(0.5)
    registry.series("s").record(1.0, 2.0)
    registry.histogram("h").observe(4.0)
    snap = registry.snapshot()
    rows = {name: (kind, value) for name, kind, value in registry.rows()}
    assert rows["c"] == ("counter", snap["c"])
    assert rows["g"] == ("gauge", snap["g"])
    assert rows["s"] == ("series", "1 samples")
    assert str(snap["h"]["count"]) in rows["h"][1]
    assert registry.kinds() == {"c": "counter", "g": "gauge", "s": "series", "h": "histogram"}
