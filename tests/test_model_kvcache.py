"""KV-cache size model — reproduces Table 1 exactly."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.model import (
    DEEPSEEK_V3,
    LLAMA31_405B,
    QWEN25_72B,
    TINY_DENSE_GQA,
    TINY_MLA_MOE,
    AttentionConfig,
    AttentionKind,
    LayerKVCache,
    compare_kv_cache,
    kv_cache_bytes,
    kv_cache_bytes_per_token,
    max_context_tokens,
)


def test_table1_deepseek_v3_bytes_exact():
    # (512 latent + 64 rope) * 2 bytes * 61 layers = 70,272 B = "70.272 KB".
    assert kv_cache_bytes_per_token(DEEPSEEK_V3) == 70272


def test_table1_qwen_bytes_exact():
    # 2 * 8 kv heads * 128 dim * 2 bytes * 80 layers = 327,680 B.
    assert kv_cache_bytes_per_token(QWEN25_72B) == 327680


def test_table1_llama_bytes_exact():
    # 2 * 8 kv heads * 128 dim * 2 bytes * 126 layers = 516,096 B.
    assert kv_cache_bytes_per_token(LLAMA31_405B) == 516096


def test_table1_multipliers():
    reports = compare_kv_cache([DEEPSEEK_V3, QWEN25_72B, LLAMA31_405B])
    by_name = {r.model_name: r for r in reports}
    assert by_name["DeepSeek-V3"].multiplier == pytest.approx(1.0)
    assert by_name["Qwen-2.5 72B"].multiplier == pytest.approx(4.66, abs=0.01)
    # 516096/70272 = 7.344; the paper prints 7.28x (see EXPERIMENTS.md).
    assert by_name["LLaMA-3.1 405B"].multiplier == pytest.approx(7.28, abs=0.08)


def test_table1_kb_display_unit():
    reports = compare_kv_cache([DEEPSEEK_V3])
    assert reports[0].kb_per_token == pytest.approx(70.272)
    assert reports[0].kib_per_token == pytest.approx(68.625)


def test_fp8_cache_halves_bf16():
    assert kv_cache_bytes_per_token(DEEPSEEK_V3, "fp8") == pytest.approx(
        kv_cache_bytes_per_token(DEEPSEEK_V3, "bf16") / 2
    )


def test_unknown_dtype_rejected():
    with pytest.raises(ValueError):
        kv_cache_bytes_per_token(DEEPSEEK_V3, "fp64")


def test_total_cache_scales_linearly():
    one = kv_cache_bytes(DEEPSEEK_V3, context_tokens=1000, batch_size=1)
    many = kv_cache_bytes(DEEPSEEK_V3, context_tokens=1000, batch_size=16)
    assert many == pytest.approx(16 * one)


def test_negative_context_rejected():
    with pytest.raises(ValueError):
        kv_cache_bytes(DEEPSEEK_V3, context_tokens=-1)


def test_max_context_on_h800_hbm():
    # With 80 GB HBM an MLA cache fits >1M tokens; a GQA 405B cache far fewer.
    budget = 80 * 1024**3
    mla = max_context_tokens(DEEPSEEK_V3, budget)
    gqa = max_context_tokens(LLAMA31_405B, budget)
    assert mla > 1_000_000
    assert mla > 7 * gqa


@given(
    kv_heads=st.integers(1, 16),
    head_dim=st.sampled_from([32, 64, 128]),
    group=st.integers(1, 8),
)
def test_gqa_cache_grows_with_kv_heads(kv_heads, head_dim, group):
    cfg = AttentionConfig(
        kind=AttentionKind.GQA,
        num_heads=kv_heads * group,
        qk_head_dim=head_dim,
        v_head_dim=head_dim,
        num_kv_heads=kv_heads,
    )
    model = QWEN25_72B.scaled("t", attention=cfg)
    assert kv_cache_bytes_per_token(model) == 2 * kv_heads * head_dim * 2 * model.num_layers


def test_layer_cache_appends_kv():
    cfg = TINY_DENSE_GQA.attention
    cache = LayerKVCache(cfg, batch_size=2)
    k = np.zeros((2, cfg.num_kv_heads, 3, cfg.qk_head_dim), np.float32)
    v = np.zeros((2, cfg.num_kv_heads, 3, cfg.v_head_dim), np.float32)
    cache.append_kv(k, v)
    assert len(cache) == 3
    cache.append_kv(k[:, :, :1], v[:, :, :1])
    assert len(cache) == 4
    assert cache.keys.shape[2] == 4


def test_layer_cache_appends_latent():
    cfg = TINY_MLA_MOE.attention
    cache = LayerKVCache(cfg, batch_size=1)
    cache.append_latent(
        np.zeros((1, 5, cfg.kv_lora_rank), np.float32),
        np.zeros((1, 5, cfg.qk_rope_head_dim), np.float32),
    )
    assert len(cache) == 5
    assert cache.latent.shape == (1, 5, cfg.kv_lora_rank)


def test_layer_cache_kind_mismatch_raises():
    mla_cache = LayerKVCache(TINY_MLA_MOE.attention, batch_size=1)
    with pytest.raises(TypeError):
        mla_cache.append_kv(np.zeros((1, 1, 1, 1)), np.zeros((1, 1, 1, 1)))
    with pytest.raises(TypeError):
        _ = mla_cache.keys
    kv_cache = LayerKVCache(TINY_DENSE_GQA.attention, batch_size=1)
    with pytest.raises(TypeError):
        kv_cache.append_latent(np.zeros((1, 1, 1)), np.zeros((1, 1, 1)))
    with pytest.raises(TypeError):
        _ = kv_cache.latent


def test_layer_cache_nbytes_matches_analytical():
    cfg = TINY_MLA_MOE.attention
    cache = LayerKVCache(cfg, batch_size=2)
    cache.append_latent(
        np.zeros((2, 7, cfg.kv_lora_rank), np.float32),
        np.zeros((2, 7, cfg.qk_rope_head_dim), np.float32),
    )
    expected = (cfg.kv_lora_rank + cfg.qk_rope_head_dim) * 2 * 7 * 2
    assert cache.nbytes("bf16") == expected
