"""Schedule rendering and order-k Markov corpora."""

import numpy as np
import pytest

from repro.parallel import ChunkCosts, simulate_pipeline
from repro.training import markov_corpus


def test_render_shape_and_symbols():
    result = simulate_pipeline(4, 3, ChunkCosts(1.0, 1.8, 0.4))
    art = result.render(width=60)
    lines = art.splitlines()
    assert len(lines) == 4
    for line in lines:
        assert line.startswith("rank")
        body = line.split("|")[1]
        assert len(body) == 60
        assert set(body) <= set("FBWfbw.")
    # Both directions appear (upper and lower case).
    assert any(c.islower() for c in art)
    assert any(c.isupper() for c in art.split("|", 1)[1])


def test_render_busy_fraction_tracks_bubble():
    result = simulate_pipeline(8, 2, ChunkCosts(1.0, 1.8, 0.4))
    art = result.render(width=200)
    body = "".join(line.split("|")[1] for line in art.splitlines())
    idle_fraction = body.count(".") / len(body)
    assert idle_fraction == pytest.approx(result.bubble_fraction, abs=0.1)


def test_render_width_validation():
    result = simulate_pipeline(2, 2, ChunkCosts(1.0, 1.0, 1.0))
    with pytest.raises(ValueError):
        result.render(width=5)


def test_order2_corpus_statistics():
    corpus = markov_corpus(8, 2000, seed=3, order=2, concentration=0.1)
    assert corpus.tokens.shape == (2000,)
    assert corpus.transition.shape == (8, 8)
    assert np.allclose(corpus.transition.sum(axis=1), 1.0)
    assert 0 < corpus.conditional_entropy <= np.log(8)


def test_order2_has_second_order_structure():
    """An order-2 chain's next token depends on the previous *pair*:
    the empirical entropy given pairs is lower than given singles."""
    corpus = markov_corpus(6, 30_000, seed=5, order=2, concentration=0.05)
    t = corpus.tokens

    def cond_entropy(contexts, nxt, num_ctx):
        counts = np.full((num_ctx, 6), 1e-12)
        for c, n in zip(contexts, nxt):
            counts[c, n] += 1
        probs = counts / counts.sum(axis=1, keepdims=True)
        weights = counts.sum(axis=1) / counts.sum()
        return float(-(weights[:, None] * probs * np.log(probs)).sum())

    h1 = cond_entropy(t[:-1], t[1:], 6)
    pairs = t[:-2] * 6 + t[1:-1]
    h2 = cond_entropy(pairs, t[2:], 36)
    assert h2 < h1 - 0.1


def test_order_validation():
    with pytest.raises(ValueError):
        markov_corpus(8, 100, order=0)


def test_order1_unchanged_semantics():
    a = markov_corpus(8, 200, seed=1, order=1)
    b = markov_corpus(8, 200, seed=1)
    assert np.array_equal(a.tokens, b.tokens)
