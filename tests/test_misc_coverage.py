"""Coverage for smaller public APIs not exercised elsewhere."""

import pytest

from repro.core import GB200_NVL72_NODE, H800_NODE
from repro.inference import DEEPSEEK_V3_INFERENCE
from repro.inference.tpot import node_spec_row
from repro.network import ENDPOINT_LINK, Flow, FlowSimulator, Topology


def test_node_spec_row_uses_nic_bandwidth():
    row = node_spec_row("h800", H800_NODE, DEEPSEEK_V3_INFERENCE)
    assert row.bandwidth == H800_NODE.nic.bandwidth
    assert row.tpot_ms == pytest.approx(14.76, abs=0.01)
    gb = node_spec_row("gb200", GB200_NVL72_NODE, DEEPSEEK_V3_INFERENCE)
    assert gb.tokens_per_second == row.tokens_per_second  # same NIC spec


def _pair_topology(bw=10e9):
    topo = Topology("pair")
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", bw, ENDPOINT_LINK)
    return topo


def test_flowsim_fixed_mode_single_link():
    topo = _pair_topology()
    sim = FlowSimulator(topo)
    flows = [Flow("a", "b", 5e9, ["a", "b"]), Flow("a", "b", 5e9, ["a", "b"])]
    result = sim.simulate(flows, mode="fixed")
    # Equal shares of 5 GB/s each -> both complete at t = 1 s.
    assert result.makespan == pytest.approx(1.0)
    assert result.rates[0] == pytest.approx(5e9)


def test_flowsim_fixed_mode_pessimistic_for_mixed_sizes():
    """Fixed-rate mode never finishes earlier than the event simulation."""
    topo = _pair_topology()
    sim = FlowSimulator(topo)
    flows = [Flow("a", "b", 1e9, ["a", "b"]), Flow("a", "b", 9e9, ["a", "b"])]
    fixed = sim.simulate(flows, mode="fixed").makespan
    event = sim.simulate(flows, mode="event").makespan
    assert fixed >= event - 1e-12


def test_flow_result_flow_bandwidth():
    topo = _pair_topology()
    sim = FlowSimulator(topo)
    flows = [Flow("a", "b", 10e9, ["a", "b"])]
    result = sim.simulate(flows)
    assert result.flow_bandwidth(0, flows) == pytest.approx(10e9)


def test_topology_links_filter():
    topo = _pair_topology()
    assert topo.links(ENDPOINT_LINK) == [("a", "b")]
    assert topo.links("interswitch") == []
    assert topo.max_switch_degree() == 0


def test_stage_times_zero_idle():
    from repro.comm import StageTimes, gpu_idle_fraction

    stages = StageTimes(0.0, 0.0, 0.0, 0.0)
    assert gpu_idle_fraction(stages) == 0.0


def test_speculative_tokens_per_step_empty():
    from repro.inference import SpeculativeResult
    import numpy as np

    empty = SpeculativeResult(np.array([]), 0, 0, 0)
    assert empty.acceptance_rate == 0.0
    assert empty.tokens_per_step == 0.0


def test_quantized_tensor_tensor_granularity_scales():
    import numpy as np
    from repro.precision import quantize_tensor

    q = quantize_tensor(np.full((4, 4), 2.0, np.float32))
    expanded = q.expand_scales()
    assert expanded.shape == (4, 4)
    assert np.allclose(q.dequantize(), 2.0, rtol=1e-2)


def test_decision_num_tokens():
    import numpy as np
    from repro.model import topk_routing

    decision = topk_routing(np.random.default_rng(0).uniform(size=(7, 8)), 2)
    assert decision.num_tokens == 7
