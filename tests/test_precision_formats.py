"""Float format descriptors and value-space quantization."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.rng import seeded_generator
from repro.precision import (
    BF16,
    E4M3,
    E5M2,
    E5M6,
    FORMAT_CATALOG,
    FP16,
    FP22_ACCUM,
    FP32,
    FloatFormat,
)


def test_e4m3_constants():
    assert E4M3.bits == 8
    assert E4M3.max_value == 448.0
    assert E4M3.bias == 7
    assert E4M3.min_normal == 2.0**-6


def test_e5m2_constants():
    assert E5M2.bits == 8
    assert E5M2.max_value == 57344.0
    assert E5M2.bias == 15


def test_bf16_and_fp16_constants():
    assert BF16.bits == 16
    assert FP16.bits == 16
    assert BF16.max_exponent == 127
    assert FP16.max_value == 65504.0


def test_fp22_accumulator_shape():
    # Section 3.1.1: 1 sign + 8 exponent + 13 mantissa bits.
    assert FP22_ACCUM.bits == 22
    assert FP22_ACCUM.exponent_bits == 8
    assert FP22_ACCUM.mantissa_bits == 13


def test_e5m6_is_12_bits():
    assert E5M6.bits == 12


def test_quantize_exact_values_pass_through():
    values = np.array([0.0, 1.0, -1.0, 0.5, 2.0, 448.0, -448.0], np.float32)
    assert np.array_equal(E4M3.quantize(values), values)


def test_quantize_saturates():
    assert E4M3.quantize(np.array([1e6]))[0] == 448.0
    assert E4M3.quantize(np.array([-1e6]))[0] == -448.0


def test_quantize_rounds_to_nearest():
    # Between 1.0 and 1.125 (E4M3 step = 0.125): 1.06 -> 1.0, 1.07 -> 1.125.
    assert E4M3.quantize(np.array([1.06]))[0] == 1.0
    assert E4M3.quantize(np.array([1.07]))[0] == 1.125


def test_quantize_round_half_even():
    # 1.0625 is exactly between 1.0 and 1.125 -> ties to even code (1.0).
    assert E4M3.quantize(np.array([1.0625]))[0] == 1.0


def test_quantize_preserves_zero_and_sign():
    out = E4M3.quantize(np.array([0.0, -0.25, 0.25]))
    assert out[0] == 0.0
    assert out[1] == -0.25
    assert out[2] == 0.25


def test_subnormal_handling():
    tiny = E4M3.min_subnormal
    assert E4M3.quantize(np.array([tiny]))[0] == pytest.approx(tiny)
    assert E4M3.quantize(np.array([tiny / 4]))[0] == 0.0


def test_fp32_format_is_nearly_lossless_for_float32():
    x = seeded_generator(0).normal(size=1000).astype(np.float32)
    assert np.allclose(FP32.quantize(x), x, rtol=1e-7)


def test_higher_mantissa_lower_error():
    x = seeded_generator(1).normal(size=4096)
    errs = [f.quantization_error(x) for f in (E5M2, E4M3, E5M6, BF16)]
    # E4M3 beats E5M2 on unit-scale data; more mantissa keeps improving.
    assert errs[1] < errs[0]
    assert errs[2] < errs[1]
    assert errs[3] < errs[2]


def test_quantization_error_of_zero_signal():
    assert E4M3.quantization_error(np.zeros(8)) == 0.0


def test_invalid_format_rejected():
    with pytest.raises(ValueError):
        FloatFormat("bad", exponent_bits=1, mantissa_bits=3)
    with pytest.raises(ValueError):
        FloatFormat("bad", exponent_bits=4, mantissa_bits=-1)


def test_catalog_contents():
    assert set(FORMAT_CATALOG) == {"E4M3", "E5M2", "E5M6", "BF16", "FP16", "FP32", "FP22"}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-1e4, 1e4, allow_nan=False), min_size=1, max_size=64))
def test_quantize_idempotent(values):
    """Quantization must be a projection: q(q(x)) == q(x)."""
    x = np.array(values, dtype=np.float32)
    once = E4M3.quantize(x)
    assert np.array_equal(E4M3.quantize(once), once)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(-400, 400, allow_nan=False), min_size=1, max_size=64))
def test_quantize_relative_error_bounded(values):
    """|q(x) - x| <= eps/2 * |x| within the normal range."""
    x = np.array(values, dtype=np.float64)
    inside = np.abs(x) >= E4M3.min_normal
    q = E4M3.quantize(x).astype(np.float64)
    err = np.abs(q[inside] - x[inside])
    assert np.all(err <= (E4M3.epsilon / 2) * np.abs(x[inside]) * (1 + 1e-9))
