"""§6.4 ordering model and §6.5 in-network computation model."""

import numpy as np
import pytest

from repro.comm import (
    EPConfig,
    EPDeployment,
    OrderedStreamConfig,
    combine_savings,
    dispatch_savings,
    ep_stage_time_with_innetwork,
    expected_reduction_factor,
    logfmt_wire_savings,
    ordering_overhead_fraction,
    rar_speedup,
    simulated_mean_m,
    stream_completion_time,
)
from repro.network import build_mpft_cluster

CONFIG = OrderedStreamConfig(
    num_messages=100, message_bytes=4096, rtt=3.7e-6, bandwidth=40e9
)


def test_ordering_scheme_hierarchy():
    """RAR < flag-poll < fence, always."""
    rar = stream_completion_time(CONFIG, "rar")
    poll = stream_completion_time(CONFIG, "flag_poll")
    fence = stream_completion_time(CONFIG, "fence")
    assert rar < poll < fence


def test_fence_cost_scales_with_rtt():
    fast = OrderedStreamConfig(100, 4096, rtt=1e-6, bandwidth=40e9)
    slow = OrderedStreamConfig(100, 4096, rtt=10e-6, bandwidth=40e9)
    gain_fast = rar_speedup(fast)
    gain_slow = rar_speedup(slow)
    assert gain_slow > gain_fast  # higher RTT -> bigger RAR win


def test_rar_approaches_serialization_floor():
    """With zero RTT, every scheme converges to the wire time."""
    config = OrderedStreamConfig(10, 40000, rtt=0.0, bandwidth=40e9)
    floor = 10 * (config.serialization + config.issue_overhead)
    assert stream_completion_time(config, "fence") == pytest.approx(floor)
    assert stream_completion_time(config, "rar") == pytest.approx(floor)


def test_ordering_overhead_fraction_bounds():
    frac = ordering_overhead_fraction(CONFIG, "fence")
    assert 0 < frac < 1
    assert ordering_overhead_fraction(CONFIG, "rar") == pytest.approx(0.0)


def test_ordering_validation():
    with pytest.raises(ValueError):
        OrderedStreamConfig(0, 64, 1e-6, 1e9)
    with pytest.raises(ValueError):
        OrderedStreamConfig(1, 64, 1e-6, 0.0)
    with pytest.raises(ValueError):
        stream_completion_time(CONFIG, "telepathy")


# --- §6.5 --------------------------------------------------------------------


def _deployment(max_nodes=4):
    cluster = build_mpft_cluster(8)
    return EPDeployment(
        cluster, EPConfig(256, 8, hidden_size=7168, max_nodes_per_token=max_nodes)
    )


def test_dispatch_savings_equal_mean_m():
    dep = _deployment()
    decisions = dep.route_tokens(128, np.random.default_rng(0))
    savings = dispatch_savings(dep, decisions)
    mean_m = expected_reduction_factor(dep, decisions)
    assert savings.reduction == pytest.approx(mean_m)
    assert savings.baseline_bytes > savings.in_network_bytes


def test_combine_savings_mirror_dispatch():
    dep = _deployment()
    decisions = dep.route_tokens(64, np.random.default_rng(1))
    d = dispatch_savings(dep, decisions)
    c = combine_savings(dep, decisions)
    assert c.reduction == pytest.approx(d.reduction)
    assert c.baseline_bytes == pytest.approx(2 * d.baseline_bytes)  # BF16 vs FP8


def test_node_limit_caps_reduction():
    limited = simulated_mean_m(_deployment(max_nodes=4), 128)
    free = simulated_mean_m(_deployment(max_nodes=0), 128)
    assert limited <= 4.0
    assert free > limited


def test_innetwork_stage_time_scaling():
    assert ep_stage_time_with_innetwork(1.0, 4.0) == pytest.approx(0.25)
    with pytest.raises(ValueError):
        ep_stage_time_with_innetwork(1.0, 0.5)


def test_logfmt_wire_savings():
    assert logfmt_wire_savings() == pytest.approx(16 / 8.5)
    with pytest.raises(ValueError):
        logfmt_wire_savings(0.0)


def test_savings_infinite_when_all_local():
    """Tokens routed only to the local node need no IB at all."""
    from repro.model import topk_routing

    dep = _deployment(max_nodes=0)
    scores = np.full((4, 256), 0.0)
    scores[:, :8] = 1.0  # experts 0..7 live on node 0
    decision = topk_routing(scores + np.random.default_rng(2).uniform(0, 0.01, scores.shape), 8)
    savings = dispatch_savings(dep, {"n0g0": decision})
    assert savings.baseline_bytes == 0.0
    assert savings.reduction == float("inf")
    assert expected_reduction_factor(dep, {"n0g0": decision}) == 1.0
