"""LogFMT-nBit codec (Section 3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.precision import (
    BF16,
    E4M3,
    E5M2,
    FUSED_ENCODE_OVERHEAD_RANGE,
    bits_per_element,
    encode_tile,
    fake_quantize,
    logfmt_fake_quantize,
    logspace_rounded_fake_quantize,
    quantization_bias,
    relative_error,
)
from repro.precision.logfmt import MAX_LOG_RANGE

from repro.core.rng import seeded_generator as RNG


def _activations(shape=(32, 256), seed=0):
    """Residual-branch-like activations: heavy-tailed, mixed sign."""
    rng = RNG(seed)
    return (rng.normal(size=shape) * np.exp(rng.normal(0, 1, size=shape))).astype(
        np.float32
    )


def test_roundtrip_preserves_shape_and_sign():
    x = _activations()
    out = logfmt_fake_quantize(x, 8)
    assert out.shape == x.shape
    nz = out != 0
    assert np.all(np.sign(out[nz]) == np.sign(x[nz]))


def test_zero_maps_to_zero():
    x = np.zeros((1, 128), np.float32)
    assert np.all(logfmt_fake_quantize(x, 8) == 0.0)


def test_zero_elements_within_tile_stay_zero():
    x = _activations((1, 128))
    x[0, 10:20] = 0.0
    out = logfmt_fake_quantize(x, 8)
    assert np.all(out[0, 10:20] == 0.0)


def test_min_and_max_are_exact():
    """Tile min and max magnitudes are codebook endpoints."""
    x = np.array([[0.001, 0.5, 2.0, 7.0]], np.float32)
    out = logfmt_fake_quantize(x, 8, tile=4)
    # min is clamped upward by the E5-range constraint only when the
    # spread exceeds 2^32; here it does not.
    assert out[0, 0] == pytest.approx(0.001, rel=1e-5)
    assert out[0, 3] == pytest.approx(7.0, rel=1e-5)


def test_dynamic_range_clamped_to_e5():
    """min is constrained to max - log(2^32)."""
    x = np.array([[1e-30, 1.0]], np.float32)
    tile = encode_tile(x[0], 8)
    assert tile.log_min == pytest.approx(np.log(1.0) - MAX_LOG_RANGE)


def test_constant_tile_roundtrips():
    x = np.full((1, 128), 3.7, np.float32)
    out = logfmt_fake_quantize(x, 8)
    assert np.allclose(out, 3.7, rtol=1e-6)


def test_paper_claim_logfmt8_beats_fp8_formats():
    """§3.2: at 8 bits LogFMT has better accuracy than E4M3 or E5M2."""
    x = _activations(seed=1)
    err_log = relative_error(x, logfmt_fake_quantize(x, 8))
    err_e4m3 = relative_error(x, fake_quantize(x, E4M3, 128))
    err_e5m2 = relative_error(x, fake_quantize(x, E5M2, 128))
    assert err_log < err_e4m3
    assert err_log < err_e5m2


def test_paper_claim_logfmt10_near_bf16():
    """§3.2: LogFMT-10Bit is 'similar to the BF16 combine stage'."""
    x = _activations(seed=2)
    err_log10 = relative_error(x, logfmt_fake_quantize(x, 10))
    err_bf16 = relative_error(x, BF16.quantize(x))
    assert err_log10 < 3 * err_bf16
    assert err_log10 < 0.01


def test_more_bits_lower_error():
    x = _activations(seed=3)
    errs = [relative_error(x, logfmt_fake_quantize(x, n)) for n in (6, 8, 10, 12)]
    assert errs == sorted(errs, reverse=True)


def test_linear_rounding_bias_is_small():
    x = _activations(seed=4)
    assert abs(quantization_bias(x, 8)) < 5e-4


def test_logspace_rounding_inflates_magnitudes():
    """§3.2: rounding must happen in linear space; log-space rounding
    systematically rounds magnitudes upward (exp is convex)."""
    x = np.abs(_activations(seed=5)) + 1e-3
    lin = logfmt_fake_quantize(x, 5)
    logr = logspace_rounded_fake_quantize(x, 5)
    assert np.mean(logr) > np.mean(lin)


def test_encode_tile_requires_bits():
    with pytest.raises(ValueError):
        encode_tile(np.ones(4), 2)


def test_bits_per_element_accounting():
    # 8-bit payload + two fp32 (min, step) per 128-element tile.
    assert bits_per_element(8, 128) == pytest.approx(8.5)
    with pytest.raises(ValueError):
        bits_per_element(8, 0)


def test_fused_overhead_range_constant():
    lo, hi = FUSED_ENCODE_OVERHEAD_RANGE
    assert 0 < lo < hi <= 1.0


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 200),
    n_bits=st.integers(4, 12),
    size=st.integers(1, 129),
)
def test_roundtrip_error_bounded_by_step(seed, n_bits, size):
    """Every decoded magnitude is within one log-step of the original."""
    x = RNG(seed).normal(size=size).astype(np.float32)
    tile = encode_tile(x, n_bits)
    decoded = tile.decode()
    nz = (x != 0) & (decoded != 0)
    if tile.step > 0 and np.any(nz):
        ratio = np.abs(np.log(np.abs(decoded[nz].astype(np.float64)))
                       - np.log(np.abs(x[nz].astype(np.float64))))
        assert np.all(ratio <= tile.step * 1.01)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 100))
def test_codes_in_range(seed):
    x = RNG(seed).normal(size=128).astype(np.float32)
    tile = encode_tile(x, 8)
    assert tile.codes.min() >= 0
    assert tile.codes.max() <= 2**7 - 1
