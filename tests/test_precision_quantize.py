"""Fine-grained tile/block quantization (Section 3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.precision import (
    E4M3,
    fake_quantize,
    quantize_blocks,
    quantize_tensor,
    quantize_tiles,
    relative_error,
)

from repro.core.rng import seeded_generator as RNG


def test_tile_quantize_roundtrip_close():
    x = RNG(0).normal(size=(4, 256)).astype(np.float32)
    q = quantize_tiles(x, E4M3, tile=128)
    assert q.scales.shape == (4, 2)
    assert relative_error(x, q.dequantize()) < 0.03


def test_tile_quantize_partial_tile():
    x = RNG(1).normal(size=(2, 200)).astype(np.float32)
    q = quantize_tiles(x, E4M3, tile=128)
    assert q.scales.shape == (2, 2)
    assert q.dequantize().shape == x.shape


def test_block_quantize_roundtrip():
    w = RNG(2).normal(size=(256, 384)).astype(np.float32)
    q = quantize_blocks(w, E4M3, block=128)
    assert q.scales.shape == (2, 3)
    assert relative_error(w, q.dequantize()) < 0.03


def test_block_quantize_partial_blocks():
    w = RNG(3).normal(size=(150, 70)).astype(np.float32)
    q = quantize_blocks(w, E4M3, block=128)
    assert q.scales.shape == (2, 1)
    assert q.dequantize().shape == w.shape


def test_block_requires_2d():
    with pytest.raises(ValueError):
        quantize_blocks(np.zeros((2, 3, 4)), E4M3)


def test_invalid_tile_rejected():
    with pytest.raises(ValueError):
        quantize_tiles(np.zeros((1, 8)), E4M3, tile=0)
    with pytest.raises(ValueError):
        quantize_blocks(np.zeros((8, 8)), E4M3, block=-1)


def test_tensor_quantize_single_scale():
    x = RNG(4).normal(size=(16, 16)).astype(np.float32)
    q = quantize_tensor(x, E4M3)
    assert q.scales.size == 1


def test_fine_grained_beats_per_tensor_with_outliers():
    """The point of 1x128 tiles: an outlier only hurts its own tile."""
    # The outlier must be large enough that a per-tensor scale pushes
    # ordinary values into E4M3's subnormal range (below max/2^6 * ~1e-2).
    x = RNG(5).normal(size=(8, 512)).astype(np.float32)
    x[0, 0] = 3e5  # one extreme outlier
    coarse = quantize_tensor(x, E4M3).dequantize()
    fine = quantize_tiles(x, E4M3, 128).dequantize()
    clean = np.s_[1:, :]  # rows unaffected by the outlier
    assert relative_error(x[clean], fine[clean]) < relative_error(x[clean], coarse[clean]) / 4


def test_quantized_values_respect_format_range():
    x = RNG(6).normal(size=(4, 128)).astype(np.float32) * 100
    q = quantize_tiles(x, E4M3)
    assert np.max(np.abs(q.data)) <= E4M3.max_value


def test_zero_tile_has_unit_scale():
    x = np.zeros((1, 128), np.float32)
    q = quantize_tiles(x, E4M3)
    assert q.scales[0, 0] == 1.0
    assert np.all(q.dequantize() == 0.0)


def test_payload_and_scale_bytes():
    x = np.zeros((4, 256), np.float32)
    q = quantize_tiles(x, E4M3, 128)
    assert q.nbytes_payload == 4 * 256  # 1 byte per fp8 element
    assert q.nbytes_scales == 4 * 2 * 4  # fp32 per tile


def test_fake_quantize_shape_and_projection():
    x = RNG(7).normal(size=(3, 5, 128)).astype(np.float32)
    fq = fake_quantize(x, E4M3)
    assert fq.shape == x.shape
    assert np.allclose(fake_quantize(fq, E4M3), fq, atol=1e-6)


def test_relative_error_zero_reference():
    assert relative_error(np.zeros(4), np.zeros(4)) == 0.0


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    cols=st.integers(1, 300),
    seed=st.integers(0, 99),
)
def test_tile_roundtrip_error_bounded(rows, cols, seed):
    """Tile-quantized error is bounded by the format's half-step."""
    x = RNG(seed).normal(size=(rows, cols)).astype(np.float32)
    deq = quantize_tiles(x, E4M3, 128).dequantize()
    # Per-tile max scales to 448; worst relative error per element is
    # ~eps/2 of the tile max, amplified by tiny subnormal effects.
    tile_max = np.max(np.abs(x)) + 1e-12
    assert np.max(np.abs(deq - x)) <= tile_max * E4M3.epsilon


def test_scales_positive():
    x = RNG(8).normal(size=(4, 256)).astype(np.float32)
    assert np.all(quantize_tiles(x, E4M3).scales > 0)
    w = RNG(9).normal(size=(256, 256)).astype(np.float32)
    assert np.all(quantize_blocks(w, E4M3).scales > 0)
