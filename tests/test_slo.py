"""SLO rules and burn-rate alerting (repro.obs.slo) + the acceptance
scenario: a seeded fault-injected serving run produces a deterministic
alert timeline — fires during the outage, resolves after repair — that
is byte-identical across runs and across sweep worker counts."""

import json

import pytest

from repro.obs import AlertEvent, SloRule, evaluate_slo, parse_slo_rules
from repro.serving import ServingSimulator, SimConfig, WorkloadSpec, report_asdict
from repro.sweep import SweepSpec, run_sweep

# -- rule construction / parsing -------------------------------------------


def test_rule_requires_exactly_one_form():
    with pytest.raises(ValueError):
        SloRule(name="both", threshold=0.5, burn_rate=2.0)
    with pytest.raises(ValueError):
        SloRule(name="neither")
    with pytest.raises(ValueError):
        SloRule(name="op", threshold=0.5, op="==")
    with pytest.raises(ValueError):
        SloRule(name="obj", burn_rate=2.0, objective=1.0)
    with pytest.raises(ValueError):
        SloRule(name="deb", burn_rate=2.0, for_windows=0)


def test_parse_compact_strings():
    burn, thresh = parse_slo_rules(["burn>2@0.9", "tpot_p99<=0.05"])
    assert burn.burn_rate == 2.0 and burn.objective == 0.9
    assert thresh.metric == "tpot_p99" and thresh.op == "<=" and thresh.threshold == 0.05
    (default_obj,) = parse_slo_rules(["burn>14"])
    assert default_obj.objective == 0.99  # @OBJECTIVE optional
    with pytest.raises(ValueError):
        parse_slo_rules(["burn=2"])
    with pytest.raises(ValueError):
        parse_slo_rules(["no_operator_here"])
    with pytest.raises(ValueError):
        parse_slo_rules([42])


def test_rule_dict_round_trip_is_canonical():
    rule = SloRule(name="r", burn_rate=2.0, objective=0.9, for_windows=2)
    data = rule.to_dict()
    assert data == {"name": "r", "burn_rate": 2.0, "objective": 0.9, "for_windows": 2}
    assert SloRule.from_dict(json.loads(json.dumps(data))) == rule
    with pytest.raises(ValueError):
        SloRule.from_dict({"name": "r", "burn_rate": 2.0, "bogus": 1})
    with pytest.raises(ValueError):
        SloRule.from_dict({"burn_rate": 2.0})
    # parse_slo_rules passes dicts and SloRules through.
    assert parse_slo_rules([data, rule]) == (rule, rule)


# -- evaluation ------------------------------------------------------------


def _summaries(attainments):
    return [
        {"index": i, "start": 2.0 * i, "end": 2.0 * i + 2.0, "slo_attainment": a}
        for i, a in enumerate(attainments)
    ]


def test_burn_rate_fire_and_resolve():
    rule = SloRule(name="burn", burn_rate=2.0, objective=0.9)
    # attainment 0.5 -> burn 5 (breach); 1.0 -> burn 0 (healthy)
    events = evaluate_slo(_summaries([1.0, 0.5, 0.5, 1.0]), [rule])
    assert [(e.state, e.window) for e in events] == [("fire", 1), ("resolve", 3)]
    assert events[0].time == 4.0  # end of the breaching window
    assert events[0].value == pytest.approx(5.0)
    assert events[0].limit == 2.0


def test_threshold_rule_uses_summary_metric():
    rule = SloRule(name="tpot", metric="tpot_p99", op="<", threshold=0.05)
    summaries = _summaries([1.0, 1.0])
    summaries[0]["tpot_p99"] = 0.04
    summaries[1]["tpot_p99"] = 0.09  # breach: not (0.09 < 0.05)
    events = evaluate_slo(summaries, [rule])
    assert [(e.state, e.window) for e in events] == [("fire", 1)]


def test_debounce_requires_consecutive_windows():
    rule = SloRule(name="b", burn_rate=2.0, objective=0.9, for_windows=2, clear_windows=2)
    # One-window blips never fire; two consecutive breaches do, and the
    # alert needs two consecutive healthy windows to resolve.
    blip = evaluate_slo(_summaries([0.0, 1.0, 0.0, 1.0]), [rule])
    assert blip == []
    events = evaluate_slo(_summaries([0.0, 0.0, 1.0, 0.0, 1.0, 1.0]), [rule])
    assert [(e.state, e.window) for e in events] == [("fire", 1), ("resolve", 5)]


def test_no_data_windows_hold_state():
    rule = SloRule(name="b", burn_rate=2.0, objective=0.9)
    # None-attainment windows neither clear a firing alert nor break a
    # breach streak: fire at window 0 survives the idle gap.
    events = evaluate_slo(_summaries([0.0, None, None, 1.0]), [rule])
    assert [(e.state, e.window) for e in events] == [("fire", 0), ("resolve", 3)]


def test_timeline_is_sorted_and_open_alerts_stay_open():
    rules = [
        SloRule(name="a", burn_rate=2.0, objective=0.9),
        SloRule(name="b", burn_rate=4.0, objective=0.9),
    ]
    events = evaluate_slo(_summaries([0.0, 0.0]), rules)
    assert [(e.time, e.rule, e.state) for e in events] == [
        (2.0, "a", "fire"),
        (2.0, "b", "fire"),
    ]  # sorted by (time, rule, state); neither ever resolves
    assert all(isinstance(e, AlertEvent) for e in events)


# -- simulator integration / acceptance ------------------------------------

_WORKLOAD = dict(
    request_rate=8.0,
    num_requests=120,
    prompt_mean=256,
    prompt_cv=0.3,
    output_mean=64,
    output_cv=0.3,
)

#: One decode node dies at t=3s and rejoins at t=6s: attainment must
#: collapse inside the outage and recover after repair (traffic keeps
#: arriving well past the repair, so healthy windows follow the drain).
_FAULTS = {"events": [{"time": 3.0, "kind": "node", "target": "decode", "mttr": 3.0}]}


def _sim_config(**overrides):
    return SimConfig(
        workload=WorkloadSpec(**_WORKLOAD),
        mode="disaggregated",
        seed=17,
        **overrides,
    )


def test_simconfig_validates_telemetry_options():
    with pytest.raises(ValueError):
        _sim_config(window_s=0.0)
    with pytest.raises(ValueError):
        _sim_config(slo_rules=("burn>2@0.9",))  # rules need a window
    cfg = _sim_config(window_s=2.0, slo_rules=("burn>2@0.9",))
    assert cfg.slo_rules == parse_slo_rules(["burn>2@0.9"])


def test_windowed_run_does_not_perturb_the_simulation():
    plain = ServingSimulator(_sim_config()).run()
    windowed = ServingSimulator(
        _sim_config(window_s=2.0, slo_rules=("burn>2@0.9",))
    ).run()
    assert windowed.windows and windowed.alerts is not None
    for field in ("completed", "duration", "tokens_generated", "ttft",
                  "tpot", "throughput_tokens_per_s"):
        assert getattr(plain, field) == getattr(windowed, field), field
    # Unmonitored runs carry no telemetry keys at all.
    assert {"windows", "alerts"}.isdisjoint(report_asdict(plain))


def test_quiet_monitored_run_reports_empty_timeline():
    report = ServingSimulator(
        _sim_config(window_s=2.0, slo_rules=("queue_depth_max<1e9",))
    ).run()
    assert report.alerts == ()  # monitored and quiet, not unmonitored


def test_alerts_fire_during_outage_and_resolve_after_repair():
    from repro.faults import FaultSchedule

    report = ServingSimulator(
        _sim_config(
            window_s=2.0,
            slo_rules=("burn>2@0.9",),
            faults=FaultSchedule.from_json(_FAULTS),
        )
    ).run()
    states = [a["state"] for a in report.alerts]
    assert "fire" in states and "resolve" in states
    fire = next(a for a in report.alerts if a["state"] == "fire")
    resolve = next(a for a in report.alerts if a["state"] == "resolve")
    assert fire["during_fault"] and fire["fault_target"] == "decode"
    assert 3.0 <= fire["time"] <= 6.0 + 2.0  # inside the outage (+1 window lag)
    assert resolve["time"] > 6.0  # only after the repair


def test_alert_timeline_is_byte_identical_across_runs_and_workers():
    """The PR's acceptance bar: same seed -> same bytes, any workers."""
    spec = SweepSpec(
        target="serving",
        points=[{"request_rate": 8.0}],
        base={**_WORKLOAD, "mode": "disaggregated", "faults": _FAULTS,
              "window_s": 2.0, "slo": ["burn>2@0.9"]},
        seed=17,
    )
    documents = [
        run_sweep(spec, workers=workers, cache=None, progress=False).to_json()
        for workers in (1, 4, 1)
    ]
    assert documents[0] == documents[1] == documents[2]
    record = json.loads(documents[0])["points"][0]["result"]
    states = [a["state"] for a in record["alerts"]]
    assert "fire" in states and "resolve" in states
    assert record["windows"], "windowed rollup must ride the sweep record"
