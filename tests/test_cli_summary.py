"""CLI and architecture summaries."""

import pytest

import repro
from repro.cli import build_parser, main
from repro.model import DEEPSEEK_V3, QWEN25_72B, TINY_DENSE_GQA
from repro.model.summary import architecture_summary, parameter_table


def test_summary_contains_headline_numbers():
    text = architecture_summary(DEEPSEEK_V3)
    assert "671.03B" in text
    assert "70.272 KB/token" in text
    assert "250 GFLOPS/token" in text
    assert "node-limited routing: 8 groups" in text
    assert "576 elements" in text  # 512 latent + 64 rope


def test_summary_dense_model():
    text = architecture_summary(QWEN25_72B)
    assert "GQA" in text
    assert "dense SwiGLU" in text
    assert "MoE" not in text


def test_parameter_table_drops_empty_components():
    rows = dict(parameter_table(TINY_DENSE_GQA))
    assert "MoE experts (total)" not in rows
    assert rows["attention"] > 0
    v3 = dict(parameter_table(DEEPSEEK_V3))
    assert v3["MoE experts (total)"] > v3["attention"]


@pytest.mark.parametrize(
    "argv",
    [
        ["summary"],
        ["summary", "qwen2.5-72b"],
        ["table1"],
        ["table2"],
        ["table3"],
        ["table5"],
        ["tpot"],
        ["budget", "--tokens", "1.0"],
        ["serve-sim", "--smoke"],
        ["serve-sim", "--smoke", "--mode", "colocated", "--mtp", "--arrival", "bursty"],
        ["serve-sim", "--smoke", "--json"],
        ["serve-sim", "--smoke", "--faults", "mtbf:4:2"],
        ["serve-sim", "--smoke", "--faults", "mtbf:4:2", "--json"],
    ],
)
def test_cli_commands_run(argv, capsys):
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert out.strip()


def test_cli_table1_values(capsys):
    main(["table1"])
    out = capsys.readouterr().out
    assert "70.272" in out
    assert "4.66x" in out


def test_cli_serve_sim_smoke_is_seeded(capsys):
    main(["serve-sim", "--smoke", "--seed", "3"])
    first = capsys.readouterr().out
    main(["serve-sim", "--smoke", "--seed", "3"])
    second = capsys.readouterr().out
    assert first == second
    assert "completed 40" in first
    assert "TPOT" in first and "goodput" in first


def test_cli_serve_sim_faults_prints_degradation(capsys):
    main(["serve-sim", "--smoke", "--seed", "7", "--faults", "mtbf:4:2"])
    out = capsys.readouterr().out
    assert "identity holds" in out
    assert "fault on" in out


def test_cli_trace_training_faults_runs_goodput_sim(tmp_path, capsys):
    out_path = tmp_path / "train.trace.json"
    main(
        [
            "trace",
            "--scenario",
            "training",
            "--smoke",
            "--faults",
            "mtbf:7200",
            "--out",
            str(out_path),
        ]
    )
    out = capsys.readouterr().out
    assert "checkpointed goodput sim" in out
    assert out_path.exists()


def test_cli_serve_sim_rejects_unknown_mode():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["serve-sim", "--mode", "hybrid"])


def test_cli_rejects_unknown_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])


def test_cli_rejects_unknown_model():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["summary", "gpt-17"])


def test_cli_version_flag_prints_version_and_exits_zero(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert repro.__version__ in capsys.readouterr().out


def test_cli_unknown_subcommand_exits_2_with_usage(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["definitely-not-a-command"])
    assert excinfo.value.code == 2
    assert "usage:" in capsys.readouterr().err


def test_cli_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--state-dir", "/tmp/x"])
    assert args.port == 0
    assert args.queue_size == 8
    assert args.job_workers == 2
