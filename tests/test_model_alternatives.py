"""Attention-alternative decode cost models (§2.1.3)."""

import pytest

from repro.model import (
    DEEPSEEK_V3,
    QWEN25_72B,
    compare_decode_costs,
    full_attention_cost,
    kv_cache_bytes_per_token,
    linear_attention_cost,
    quantized_cache_cost,
    sparse_attention_cost,
    windowed_attention_cost,
)

CTX = 131_072


def test_full_attention_matches_kv_cache_model():
    cost = full_attention_cost(DEEPSEEK_V3, CTX)
    assert cost.cache_bytes_stored_per_token == kv_cache_bytes_per_token(DEEPSEEK_V3)
    assert cost.cache_bytes_read == pytest.approx(
        kv_cache_bytes_per_token(DEEPSEEK_V3) * CTX
    )


def test_full_attention_scales_linearly_with_context():
    a = full_attention_cost(DEEPSEEK_V3, 1024)
    b = full_attention_cost(DEEPSEEK_V3, 4096)
    assert b.cache_bytes_read == pytest.approx(4 * a.cache_bytes_read)
    assert b.flops == pytest.approx(4 * a.flops)


def test_windowed_caps_cost():
    windowed = windowed_attention_cost(DEEPSEEK_V3, CTX, window=4096)
    full = full_attention_cost(DEEPSEEK_V3, CTX)
    assert windowed.cache_bytes_read == pytest.approx(full.cache_bytes_read * 4096 / CTX)
    # Short contexts are unaffected by the window.
    short = windowed_attention_cost(DEEPSEEK_V3, 1024, window=4096)
    assert short.cache_bytes_read == full_attention_cost(DEEPSEEK_V3, 1024).cache_bytes_read


def test_quantized_cache_halves_bf16_reads():
    fp8 = quantized_cache_cost(DEEPSEEK_V3, CTX, "fp8")
    bf16 = full_attention_cost(DEEPSEEK_V3, CTX, "bf16")
    assert fp8.cache_bytes_read == pytest.approx(bf16.cache_bytes_read / 2)
    assert fp8.flops == bf16.flops  # same attended positions


def test_sparse_attends_fraction_of_long_context():
    sparse = sparse_attention_cost(DEEPSEEK_V3, CTX)
    full = full_attention_cost(DEEPSEEK_V3, CTX)
    assert sparse.cache_bytes_read < 0.1 * full.cache_bytes_read
    assert sparse.flops < 0.1 * full.flops
    # ... but stores the full cache.
    assert sparse.cache_bytes_stored_per_token == full.cache_bytes_stored_per_token


def test_sparse_never_exceeds_full():
    tiny_ctx = 256
    sparse = sparse_attention_cost(DEEPSEEK_V3, tiny_ctx)
    full = full_attention_cost(DEEPSEEK_V3, tiny_ctx)
    assert sparse.cache_bytes_read <= full.cache_bytes_read * (1 + 1e-9)


def test_linear_is_context_independent():
    a = linear_attention_cost(DEEPSEEK_V3, 1024)
    b = linear_attention_cost(DEEPSEEK_V3, 10_000_000)
    assert a.cache_bytes_read == b.cache_bytes_read
    assert a.flops == b.flops
    assert a.cache_bytes_stored_per_token == 0.0


def test_crossover_linear_wins_at_extreme_context():
    """§2.1.3: linear-time alternatives matter for extreme contexts."""
    moderate = 8192
    extreme = 1_000_000
    assert (
        linear_attention_cost(DEEPSEEK_V3, moderate).cache_bytes_read
        > full_attention_cost(DEEPSEEK_V3, moderate).cache_bytes_read / 10
    )
    assert (
        linear_attention_cost(DEEPSEEK_V3, extreme).cache_bytes_read
        < full_attention_cost(DEEPSEEK_V3, extreme).cache_bytes_read / 100
    )


def test_mla_full_reads_less_than_gqa_full():
    """MLA's compression shows up directly in decode reads."""
    mla = full_attention_cost(DEEPSEEK_V3, CTX)
    gqa = full_attention_cost(QWEN25_72B, CTX)
    assert mla.cache_bytes_read < gqa.cache_bytes_read / 4


def test_compare_returns_all_strategies():
    costs = compare_decode_costs(DEEPSEEK_V3, CTX)
    assert len(costs) == 5
    names = [c.name for c in costs]
    assert any("mla" in n for n in names)
    assert any("linear" in n for n in names)


def test_validation():
    with pytest.raises(ValueError):
        windowed_attention_cost(DEEPSEEK_V3, CTX, window=0)
    with pytest.raises(ValueError):
        sparse_attention_cost(DEEPSEEK_V3, CTX, selected_tokens=0)
