"""Cross-module integration: the systems working together end to end."""

import numpy as np
import pytest

from repro.comm import EPConfig, EPDeployment, run_ep_stage
from repro.inference import mtp_speedup
from repro.model import (
    DEEPSEEK_V3,
    TINY_MLA_MOE,
    MoEGate,
    MoEConfig,
    load_imbalance,
)
from repro.network import build_mpft_cluster
from repro.parallel import ShardingPlan, TrainingJobConfig, fits, simulate_training_step
from repro.training import (
    TrainableTransformer,
    markov_corpus,
    measure_mtp_acceptance,
    sample_windows,
    train,
)

RNG = np.random.default_rng


@pytest.fixture(scope="module")
def trained_model():
    """One tiny model trained once, shared by the integration tests."""
    corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 30_000, seed=7, concentration=0.02)
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    result = train(model, corpus, steps=150, batch_size=8, seq_len=24, lr=3e-3)
    return model, corpus, result


def test_training_learns_the_language(trained_model):
    model, corpus, result = trained_model
    # Loss approaches the corpus entropy floor (plus the MTP term).
    assert result.final_loss < result.losses[0] - 2.0
    assert result.final_loss < 1.3 * (corpus.conditional_entropy + 2.5)


def test_trained_mtp_acceptance_far_above_chance(trained_model):
    """§2.3.3's mechanism: acceptance emerges from training.  Chance
    level is 1/vocab ~ 0.4%; a briefly trained tiny model already
    exceeds 40%, and the implied speedup is meaningful."""
    model, corpus, _ = trained_model
    windows = sample_windows(corpus, num_windows=16, seq_len=24, seed=1)
    report = measure_mtp_acceptance(model, windows)
    assert report.attempted > 200
    assert report.acceptance_rate > 0.4
    assert mtp_speedup(report.acceptance_rate) > 1.3


def test_untrained_mtp_acceptance_near_chance():
    model = TrainableTransformer(TINY_MLA_MOE, seed=3)
    corpus = markov_corpus(TINY_MLA_MOE.vocab_size, 2_000, seed=9)
    windows = sample_windows(corpus, 8, 16, seed=2)
    report = measure_mtp_acceptance(model, windows)
    assert report.acceptance_rate < 0.1


def test_mtp_eval_validation():
    model = TrainableTransformer(TINY_MLA_MOE, seed=0)
    with pytest.raises(ValueError):
        measure_mtp_acceptance(model, np.zeros((1, 3), dtype=int))
    from repro.model import TINY_DENSE_GQA

    no_mtp = TrainableTransformer(TINY_DENSE_GQA, seed=0)
    with pytest.raises(ValueError):
        measure_mtp_acceptance(no_mtp, np.zeros((1, 8), dtype=int))


def test_real_gate_decisions_drive_ep_simulation():
    """model.routing (a live MoE gate) feeding comm.ep on the cluster
    graph: V3-shaped gate, node-limited routing, dispatch simulation."""
    cluster = build_mpft_cluster(8)
    moe = MoEConfig(
        num_routed_experts=256,
        num_shared_experts=1,
        experts_per_token=8,
        intermediate_size=2048,
        num_expert_groups=8,
        max_groups_per_token=4,
    )
    gate = MoEGate(moe, hidden_size=64, rng=RNG(0))
    deployment = EPDeployment(cluster, EPConfig(256, 8, hidden_size=7168))
    decisions = {
        src: gate.route(RNG(i).normal(size=(128, 64)).astype(np.float32))
        for i, src in enumerate(cluster.gpus())
    }
    result = run_ep_stage(deployment, decisions, "dispatch")
    assert 0 < result.per_gpu_bandwidth <= 40e9 * 1.01
    # Node-limited routing means IB bytes/token <= 4 x hidden.
    per_token = result.total_ib_bytes / (len(decisions) * 128)
    assert per_token <= 4 * 7168


def test_balanced_gate_improves_ep_stage_time():
    """Aux-loss-free balancing (model) -> smoother expert load ->
    faster EP stage (comm): the co-design loop closed end to end."""
    cluster = build_mpft_cluster(4)
    moe = MoEConfig(
        num_routed_experts=256,
        num_shared_experts=1,
        experts_per_token=8,
        intermediate_size=2048,
        num_expert_groups=4,
        max_groups_per_token=4,
    )
    deployment = EPDeployment(cluster, EPConfig(256, 8, hidden_size=7168, max_nodes_per_token=4))
    gate = MoEGate(moe, hidden_size=64, rng=RNG(1), bias_update_speed=0.02)
    gate.weight[:, :16] += 1.5  # skew: early experts (node 0) overloaded

    def decisions_for(g):
        return {
            src: g.route(RNG(100 + i).normal(size=(256, 64)).astype(np.float32))
            for i, src in enumerate(cluster.gpus())
        }

    before = decisions_for(gate)
    imbalance_before = np.mean(
        [load_imbalance(d, 256) for d in before.values()]
    )
    for _ in range(150):
        gate.update_bias(gate.route(RNG(5).normal(size=(512, 64)).astype(np.float32)))
    after = decisions_for(gate)
    imbalance_after = np.mean([load_imbalance(d, 256) for d in after.values()])
    assert imbalance_after < imbalance_before

    t_before = run_ep_stage(deployment, before, "dispatch").time
    t_after = run_ep_stage(deployment, after, "dispatch").time
    assert t_after <= t_before * 1.02  # balancing never hurts, usually helps


def test_flops_model_feeds_training_simulation():
    """model.flops -> parallel.throughput: the Table 4 step time derives
    from the same counter that reproduces Table 2."""
    from repro.model import training_flops_per_token

    cfg = TrainingJobConfig()
    report = simulate_training_step(cfg)
    gf_per_token = training_flops_per_token(DEEPSEEK_V3, 4096) / 1e9
    # Cross-check: achieved causal TFLOPS x GPUs x step_time equals
    # tokens x GF/token.
    total_flops = report.mfu.tflops(True) * 1e12 * cfg.num_gpus * report.step_time
    assert total_flops == pytest.approx(cfg.tokens_per_step * gf_per_token * 1e9, rel=1e-6)


def test_memory_plan_consistent_with_training_config():
    """The Table 4 job's sharding fits the H800 it runs on."""
    cfg = TrainingJobConfig()
    plan = ShardingPlan(
        pipeline_parallel=cfg.pipeline_parallel,
        expert_parallel=64,
        microbatch_tokens=cfg.microbatch_sequences * cfg.seq_len,
    )
    assert fits(DEEPSEEK_V3, plan, cfg.gpu.hbm_bytes)
