"""Parameter counts and FLOPs — reproduces Table 2 and §2.2.1's sizes."""

import pytest

from repro.model import (
    DEEPSEEK_V2,
    DEEPSEEK_V3,
    LLAMA31_405B,
    QWEN25_72B,
    attention_matmul_flops_per_token,
    compare_training_cost,
    count_params,
    decode_flops_per_token,
    ffn_params,
    forward_flops_per_token,
    training_flops_per_token,
)


def test_deepseek_v3_total_params_671b():
    # §2.2.1: "DeepSeek-V3 expands to 671B parameters" (main model;
    # the MTP module adds ~11.5B more, giving the ~685B checkpoint).
    params = count_params(DEEPSEEK_V3)
    assert params.total_main == pytest.approx(671e9, rel=0.01)
    assert params.total == pytest.approx(685e9, rel=0.01)


def test_deepseek_v3_active_params_37b():
    assert count_params(DEEPSEEK_V3).active == pytest.approx(37e9, rel=0.05)


def test_deepseek_v2_params():
    # §2.2.1: 236B total, 21B activated.
    params = count_params(DEEPSEEK_V2)
    assert params.total == pytest.approx(236e9, rel=0.01)
    assert params.active == pytest.approx(21e9, rel=0.05)


def test_dense_models_activate_everything():
    for model in (QWEN25_72B, LLAMA31_405B):
        params = count_params(model)
        assert params.active == params.total
        assert params.moe_total == 0


def test_qwen_and_llama_totals():
    assert count_params(QWEN25_72B).total == pytest.approx(72.7e9, rel=0.02)
    assert count_params(LLAMA31_405B).total == pytest.approx(405.8e9, rel=0.01)


def test_table2_deepseek_v2_gflops():
    # Table 2: DeepSeek-V2 155 GFLOPS/token at seq 4096.
    assert training_flops_per_token(DEEPSEEK_V2, 4096) / 1e9 == pytest.approx(155, rel=0.02)


def test_table2_deepseek_v3_gflops():
    # Table 2: DeepSeek-V3 250 GFLOPS/token.
    assert training_flops_per_token(DEEPSEEK_V3, 4096) / 1e9 == pytest.approx(250, rel=0.02)


def test_table2_llama_405b_gflops():
    # Table 2: LLaMA-405B 2448 GFLOPS/token.
    assert training_flops_per_token(LLAMA31_405B, 4096) / 1e9 == pytest.approx(2448, rel=0.02)


def test_table2_qwen_gflops_shape():
    # Table 2 reports 394; config-derived counting gives ~445 (the paper
    # value implies N~63B where the released model has ~70B of matmul
    # params — see EXPERIMENTS.md).  The *shape* claim holds: the dense
    # 72B model costs well over 1.5x the 671B MoE model per token.
    gf = training_flops_per_token(QWEN25_72B, 4096) / 1e9
    assert 380 <= gf <= 470
    assert gf > 1.5 * training_flops_per_token(DEEPSEEK_V3, 4096) / 1e9


def test_table2_order_of_magnitude_claim():
    # §2.2.1: MoE consumes "an order of magnitude less" than the 405B dense.
    v3 = training_flops_per_token(DEEPSEEK_V3, 4096)
    llama = training_flops_per_token(LLAMA31_405B, 4096)
    assert llama / v3 > 9


def test_causal_is_cheaper_than_noncausal():
    causal = training_flops_per_token(DEEPSEEK_V3, 4096, causal=True)
    full = training_flops_per_token(DEEPSEEK_V3, 4096, causal=False)
    assert causal < full
    attn_causal = attention_matmul_flops_per_token(DEEPSEEK_V3, 4096, True)
    attn_full = attention_matmul_flops_per_token(DEEPSEEK_V3, 4096, False)
    assert attn_full == pytest.approx(2 * attn_causal)


def test_training_is_3x_forward():
    fwd = forward_flops_per_token(DEEPSEEK_V3, 4096)
    train = training_flops_per_token(DEEPSEEK_V3, 4096)
    assert train == pytest.approx(3 * fwd)


def test_decode_flops_grow_with_context():
    short = decode_flops_per_token(DEEPSEEK_V3, 1024)
    long = decode_flops_per_token(DEEPSEEK_V3, 65536)
    assert long > short


def test_attention_flops_require_positive_seq():
    with pytest.raises(ValueError):
        attention_matmul_flops_per_token(DEEPSEEK_V3, 0)


def test_compare_training_cost_report():
    reports = compare_training_cost([DEEPSEEK_V3, QWEN25_72B])
    assert reports[0].kind == "MoE"
    assert reports[1].kind == "Dense"
    assert reports[0].gflops_per_token < reports[1].gflops_per_token
    assert reports[0].total_params > reports[1].total_params


def test_ffn_params_formula():
    assert ffn_params(10, 20) == 600


def test_param_breakdown_components_sum():
    p = count_params(DEEPSEEK_V3)
    assert p.total == (
        p.embedding + p.output_head + p.attention + p.dense_ffn
        + p.moe_total + p.gates + p.mtp_total
    )
    assert p.active_linear < p.active
