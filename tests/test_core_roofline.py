"""Roofline estimates."""

import pytest

from repro.core import H800, OpProfile, estimate, machine_balance


def test_arithmetic_intensity():
    op = OpProfile("gemm", flops=4e12, bytes_moved=2e9)
    assert op.arithmetic_intensity == pytest.approx(2000.0)


def test_zero_bytes_is_infinite_intensity():
    assert OpProfile("x", 1.0, 0.0).arithmetic_intensity == float("inf")


def test_gemv_is_memory_bound_on_h800():
    # Decode-time GEMV: 2 FLOPs per parameter byte pair — far below the
    # H800's ~295 FLOP/byte machine balance (Section 2.1.2's argument).
    n = 7168 * 7168
    op = OpProfile("gemv", flops=2.0 * n, bytes_moved=2.0 * n)
    est = estimate(op, H800)
    assert est.is_memory_bound
    assert est.time == est.memory_time


def test_large_gemm_is_compute_bound_on_h800():
    m = k = n = 8192
    op = OpProfile("gemm", flops=2.0 * m * k * n, bytes_moved=2.0 * (m * k + k * n + m * n))
    est = estimate(op, H800)
    assert not est.is_memory_bound


def test_machine_balance_h800():
    assert machine_balance(H800) == pytest.approx(989e12 / 3.35e12)
    assert machine_balance(H800, "fp8") == pytest.approx(2 * machine_balance(H800), rel=0.01)


def test_utilization_bounds():
    op = OpProfile("op", flops=1e12, bytes_moved=1e9)
    est = estimate(op, H800)
    assert 0 < est.utilization <= 1


def test_efficiency_derating():
    op = OpProfile("op", flops=1e12, bytes_moved=1e6)
    full = estimate(op, H800)
    half = estimate(op, H800, compute_efficiency=0.5)
    assert half.compute_time == pytest.approx(2 * full.compute_time)


def test_invalid_efficiency_rejected():
    op = OpProfile("op", flops=1.0, bytes_moved=1.0)
    with pytest.raises(ValueError):
        estimate(op, H800, compute_efficiency=0.0)
    with pytest.raises(ValueError):
        estimate(op, H800, memory_efficiency=1.5)
