"""Robustness machinery of the experiment service.

Covers graceful drain (503 + Retry-After, journaled ``drain`` record,
byte-identical resume), per-job deadlines, the hung-job watchdog, the
per-target circuit breaker, bounded SSE replay history, the client's
bounded 429 retry, journal crash-truncation at every byte offset, and
supervised (chaos-hardened) job execution end to end.
"""

from __future__ import annotations

import asyncio
import json
import time
from pathlib import Path

import pytest

from repro.chaos import ChaosPolicy, chaos_spec, reference_spec
from repro.service import (
    CircuitBreaker,
    CircuitOpen,
    EventBroker,
    ExperimentServer,
    JobSpec,
    ServiceClient,
    ServiceConfig,
    StateStore,
)
from repro.sweep import SupervisorPolicy, SweepSpec, register_target, run_sweep


@register_target("robust-sleepy")
def _sleepy(config: dict, seed: int) -> dict:
    time.sleep(config.get("sleep_s", 0.1))
    return {"x": config.get("x", 0), "seed": seed}


@register_target("robust-doomed")
def _doomed(config: dict, seed: int) -> dict:
    raise RuntimeError("this target never works")


@register_target("robust-inner")
def _robust_inner(config: dict, seed: int) -> dict:
    return {"y": config["y"] * 3, "seed": seed}


def _config(tmp_path: Path, **overrides) -> ServiceConfig:
    defaults = dict(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        heartbeat_s=0.2,
        metrics_interval_s=0.05,
        watchdog_interval_s=0.05,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _with_server(config: ServiceConfig, body) -> None:
    server = ExperimentServer(config)
    await server.start()
    try:
        await body(server, ServiceClient(server.host, server.port))
    finally:
        await server.stop()


async def _wait_for(predicate, timeout: float = 10.0, interval: float = 0.02):
    deadline = asyncio.get_running_loop().time() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if asyncio.get_running_loop().time() > deadline:
            raise TimeoutError("condition never became true")
        await asyncio.sleep(interval)


def _journal_kinds(state_dir: Path, job_id: str) -> list[str]:
    path = state_dir / "jobs" / f"{job_id}.jsonl"
    return [json.loads(line)["kind"] for line in path.read_text().splitlines()]


# ---------------------------------------------------------------------------
# JobSpec robustness knobs
# ---------------------------------------------------------------------------


def test_jobspec_accepts_and_journals_robustness_knobs():
    payload = {
        "target": "robust-sleepy",
        "points": [{"x": 1}],
        "deadline_s": 30.0,
        "timeout_s": 5.0,
        "max_attempts": 3,
    }
    spec = JobSpec.from_payload(payload)
    assert (spec.deadline_s, spec.timeout_s, spec.max_attempts) == (30.0, 5.0, 3)
    assert JobSpec.from_journal(spec.to_payload()) == spec
    policy = spec.supervisor_policy()
    assert policy == SupervisorPolicy(timeout_s=5.0, max_attempts=3)
    # Defaults keep the plain pool path.
    plain = JobSpec.from_payload({"target": "robust-sleepy", "points": [{"x": 1}]})
    assert plain.supervisor_policy() is None


@pytest.mark.parametrize(
    "bad",
    [
        {"deadline_s": 0},
        {"deadline_s": "soon"},
        {"timeout_s": -1},
        {"timeout_s": True},
        {"max_attempts": 0},
        {"max_attempts": 1.5},
    ],
)
def test_jobspec_rejects_bad_robustness_values(bad):
    payload = {"target": "robust-sleepy", "points": [{"x": 1}], **bad}
    with pytest.raises(ValueError):
        JobSpec.from_payload(payload)


def test_jobspec_resolves_lazily_registered_chaos_target():
    spec = JobSpec.from_payload(
        {
            "target": "chaos",
            "points": [
                {
                    "chaos_mode": "none",
                    "chaos_attempts": 1,
                    "chaos_hang_s": 1.0,
                    "chaos_slow_s": 0.0,
                    "inner_target": "robust-sleepy",
                    "inner": {"x": 1, "sleep_s": 0.0},
                    "inner_seed": 7,
                }
            ],
        }
    )
    assert spec.target == "chaos"


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------


def test_breaker_trips_cools_down_and_half_open_probes():
    now = {"t": 0.0}
    breaker = CircuitBreaker(threshold=3, cooldown_s=10.0, clock=lambda: now["t"])
    for _ in range(2):
        breaker.record_failure("serving")
    breaker.admit("serving")  # two failures: still closed
    breaker.record_failure("serving")
    assert breaker.state_of("serving") == "open"
    with pytest.raises(CircuitOpen) as excinfo:
        breaker.admit("serving")
    assert 0 < excinfo.value.retry_after <= 10.0
    # Cooldown elapses: exactly one probe is admitted.
    now["t"] = 11.0
    breaker.admit("serving")
    assert breaker.state_of("serving") == "half_open"
    with pytest.raises(CircuitOpen):
        breaker.admit("serving")  # probe in flight
    # Probe failure re-opens for a fresh cooldown...
    breaker.record_failure("serving")
    assert breaker.state_of("serving") == "open"
    with pytest.raises(CircuitOpen):
        breaker.admit("serving")
    # ...and a successful probe closes it fully.
    now["t"] = 22.0
    breaker.admit("serving")
    breaker.record_success("serving")
    assert breaker.state_of("serving") == "closed"
    breaker.admit("serving")
    # Other targets were never affected.
    breaker.admit("flowsim")
    assert breaker.describe() == {}


def test_breaker_rejects_doomed_target_after_consecutive_failures(tmp_path):
    config = _config(tmp_path, breaker_threshold=2, breaker_cooldown_s=60.0)
    spec = {"target": "robust-doomed", "points": [{"x": 1}], "seed": 1}

    async def body(server, client):
        await client.wait_healthy()
        for _ in range(2):
            status, job = await client.post_json("/jobs", spec)
            assert status == 202
            events = await client.collect_events(
                f"/jobs/{job['id']}/events", timeout=30
            )
            # Every point errored -> the job counts as a breaker failure.
            assert events[-1][0] == "done" and events[-1][1]["errors"] == 1
        status, headers, body_bytes = await client.request("POST", "/jobs", spec)
        assert status == 503
        assert "retry-after" in headers
        assert b"circuit breaker open" in body_bytes
        _, health = await client.get_json("/healthz")
        assert health["breakers"]["robust-doomed"]["state"] == "open"
        # A healthy target is unaffected by the open breaker.
        ok = {"target": "robust-sleepy", "points": [{"x": 1, "sleep_s": 0.0}]}
        status, job = await client.post_json("/jobs", ok)
        assert status == 202
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)

    asyncio.run(_with_server(config, body))


# ---------------------------------------------------------------------------
# Deadlines and the hung-job watchdog
# ---------------------------------------------------------------------------


def test_job_deadline_interrupts_at_point_boundary(tmp_path):
    config = _config(tmp_path)
    spec = {
        "target": "robust-sleepy",
        "points": [{"x": i, "sleep_s": 0.15} for i in range(20)],
        "deadline_s": 0.4,
        "seed": 1,
    }

    async def body(server, client):
        await client.wait_healthy()
        status, job = await client.post_json("/jobs", spec)
        assert status == 202
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        assert events[-1][0] == "failed"
        assert any(event == "deadline" for event, _ in events)
        _, detail = await client.get_json(f"/jobs/{job['id']}")
        assert detail["error"].startswith("JobDeadlineExceeded")
        assert 0 < detail["done"] < 20  # stopped at a boundary, not the end
        kinds = _journal_kinds(config.state_dir, job["id"])
        assert "deadline" in kinds
        snapshot = server.metrics.snapshot()
        assert snapshot["service.jobs.deadline_exceeded"] == 1

    asyncio.run(_with_server(config, body))


def test_hung_watchdog_flags_and_clears(tmp_path):
    config = _config(tmp_path, hung_after_s=0.2)
    spec = {
        "target": "robust-sleepy",
        "points": [{"x": 0, "sleep_s": 0.6}, {"x": 1, "sleep_s": 0.0}],
        "seed": 1,
    }

    async def body(server, client):
        await client.wait_healthy()
        status, job = await client.post_json("/jobs", spec)
        assert status == 202
        # The long first point stalls progress past hung_after_s.
        await _wait_for(lambda: server.manager.jobs[job["id"]].hung, timeout=10)
        _, detail = await client.get_json(f"/jobs/{job['id']}")
        assert detail.get("hung") is True
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        assert any(event == "hung" for event, _ in events)
        assert events[-1][0] == "done"  # it was slow, not dead
        assert not server.manager.jobs[job["id"]].hung  # progress cleared it
        assert "hung" in _journal_kinds(config.state_dir, job["id"])
        assert server.metrics.snapshot()["service.jobs.hung_detected"] >= 1

    asyncio.run(_with_server(config, body))


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------


def test_drain_interrupts_journals_and_rejects(tmp_path):
    config = _config(tmp_path, job_workers=1, drain_grace_s=10.0)
    running = {
        "target": "robust-sleepy",
        "points": [{"x": i, "sleep_s": 0.1} for i in range(30)],
        "seed": 1,
    }
    queued = {"target": "robust-sleepy", "points": [{"x": 99}], "seed": 2}

    async def body(server, client):
        await client.wait_healthy()
        _, first = await client.post_json("/jobs", running)
        _, second = await client.post_json("/jobs", queued)
        await _wait_for(
            lambda: server.manager.jobs[first["id"]].done_points >= 2, timeout=15
        )
        settled = await server.drain()
        assert settled is True
        job = server.manager.jobs[first["id"]]
        assert job.state == "interrupted" and 0 < job.done_points < 30
        assert "drain" in _journal_kinds(config.state_dir, first["id"])
        assert "drain" in _journal_kinds(config.state_dir, second["id"])
        # Draining servers advertise it and refuse new work with 503.
        _, health = await client.get_json("/healthz")
        assert health["draining"] is True
        status, headers, _ = await client.request("POST", "/jobs", queued)
        assert status == 503 and "retry-after" in headers
        assert server.metrics.snapshot()["service.jobs.drained"] == 1

    asyncio.run(_with_server(config, body))


def test_drained_jobs_resume_byte_identically(tmp_path):
    """Drain mid-job, restart over the same state/cache dirs: the job
    completes recomputing only unevaluated points, and the report is
    byte-identical to an undrained run."""
    points = [{"x": i, "sleep_s": 0.05} for i in range(8)]
    spec = {"target": "robust-sleepy", "points": points, "seed": 4}
    config = _config(tmp_path, job_workers=1)

    async def drain_mid_job(server, client):
        await client.wait_healthy()
        _, job = await client.post_json("/jobs", spec)
        await _wait_for(
            lambda: server.manager.jobs[job["id"]].done_points >= 2, timeout=15
        )
        await server.drain()
        drained = server.manager.jobs[job["id"]]
        assert drained.state == "interrupted"
        return job["id"], drained.done_points

    async def run_first():
        server = ExperimentServer(config)
        await server.start()
        try:
            return await drain_mid_job(server, ServiceClient(server.host, server.port))
        finally:
            await server.stop()

    job_id, done_before = asyncio.run(run_first())
    assert 0 < done_before < len(points)

    async def resume(server, client):
        await client.wait_healthy()
        job = server.manager.jobs[job_id]
        assert job.resumed is True
        await _wait_for(lambda: job.terminal, timeout=30)
        assert job.state == "done"
        # Every pre-drain point came back as a cache hit.
        assert job.cache_hits == done_before
        assert job.evaluated == len(points) - done_before

    asyncio.run(_with_server(_config(tmp_path, job_workers=1), resume))
    artifact = (config.state_dir / "artifacts" / f"{job_id}.report.json").read_text()
    direct = run_sweep(SweepSpec(target="robust-sleepy", points=points, seed=4))
    assert artifact == direct.to_report_json()


# ---------------------------------------------------------------------------
# Client 429 retry budget
# ---------------------------------------------------------------------------


def test_client_post_retries_429_within_budget():
    """A stub server 429s twice with Retry-After: 0.05, then accepts."""
    hits = []

    async def scenario():
        async def handle(reader, writer):
            await reader.readuntil(b"\r\n\r\n")  # headers; body is ignored
            hits.append(1)
            if len(hits) <= 2:
                body = b'{"error": "busy"}'
                head = (
                    b"HTTP/1.1 429 Too Many Requests\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Retry-After: 0.05\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
                )
            else:
                body = b'{"id": "j0001"}'
                head = (
                    b"HTTP/1.1 202 Accepted\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: %d\r\nConnection: close\r\n\r\n" % len(body)
                )
            writer.write(head + body)
            await writer.drain()
            writer.close()

        server = await asyncio.start_server(handle, "127.0.0.1", 0)
        port = server.sockets[0].getsockname()[1]
        async with server:
            client = ServiceClient("127.0.0.1", port)
            # Budget covers both hinted waits: the POST succeeds.
            status, payload = await client.post_json(
                "/jobs", {"x": 1}, retry_budget_s=1.0
            )
            assert (status, payload["id"], len(hits)) == (202, "j0001", 3)
            # Zero budget (the default): the 429 surfaces immediately.
            hits.clear()
            status, payload = await client.post_json("/jobs", {"x": 1})
            assert status == 429 and len(hits) == 1
            # A budget smaller than the hint refuses to wait at all.
            hits.clear()
            status, _ = await client.post_json(
                "/jobs", {"x": 1}, retry_budget_s=0.01
            )
            assert status == 429 and len(hits) == 1

    asyncio.run(asyncio.wait_for(scenario(), timeout=15))


# ---------------------------------------------------------------------------
# Journal crash-truncation, atomic writes, bounded replay
# ---------------------------------------------------------------------------


def test_journal_truncated_at_every_byte_offset_never_raises(tmp_path):
    """Kill an append at any byte: load() keeps every fully-written
    record and loses at most the one being written."""
    store = StateStore(tmp_path / "state")
    records = [
        {"kind": "submit", "spec": {"target": "t", "points": [{"x": 1}]}},
        {"kind": "status", "state": "running"},
        {"kind": "point", "index": 0, "key": "ab" * 8, "cached": False},
        {"kind": "drain", "done": 1, "total": 4},
        {"kind": "status", "state": "done"},
    ]
    for record in records:
        store.append("j0001", record)
    blob = store.journal_path("j0001").read_bytes()

    # Line-end offsets tell us how many records each prefix preserves.
    # A record survives when its newline made it to disk — or when the
    # cut landed exactly on the newline, leaving complete JSON behind
    # (a strict prefix of a JSON object never parses, so nothing
    # partially-written ever sneaks through).
    ends = [i + 1 for i, b in enumerate(blob) if b == 0x0A]
    for offset in range(len(blob) + 1):
        crash_dir = tmp_path / "crash"
        crashed = StateStore(crash_dir)
        crashed.journal_path("j0001").write_bytes(blob[:offset])
        loaded = crashed.load()  # must never raise
        expected = sum(1 for end in ends if end <= offset)
        if offset + 1 in ends:
            expected += 1
        got = len(loaded.get("j0001", []))
        assert got == expected, f"offset {offset}: {got} != {expected}"
        assert loaded.get("j0001", records[:0]) == records[:expected]
        crashed.journal_path("j0001").unlink()


def test_server_info_survives_rewrite(tmp_path):
    store = StateStore(tmp_path / "state")
    path = store.write_server_info("127.0.0.1", 1234)
    first = json.loads(path.read_text())
    assert (first["host"], first["port"]) == ("127.0.0.1", 1234)
    store.write_server_info("127.0.0.1", 5678)
    assert json.loads(path.read_text())["port"] == 5678


def test_event_broker_bounded_replay_with_truncated_marker():
    broker = EventBroker(buffer=8, history_limit=5)
    for i in range(8):
        broker.publish("progress", {"index": i})
    replay, queue = broker.subscribe()
    assert replay[0] == ("truncated", {"trimmed": 3, "kept": 5})
    assert [data["index"] for _, data in replay[1:]] == [3, 4, 5, 6, 7]
    broker.unsubscribe(queue)
    # Under the cap there is no marker.
    small = EventBroker(buffer=8, history_limit=5)
    small.publish("progress", {"index": 0})
    replay, queue = small.subscribe()
    assert replay == [("progress", {"index": 0})]


# ---------------------------------------------------------------------------
# Supervised (chaos-hardened) jobs end to end
# ---------------------------------------------------------------------------


def test_supervised_chaos_job_through_the_service(tmp_path):
    """A chaos grid submitted as a service job — points kill, hang,
    raise, and dawdle — still ends 'done' with a report whose results
    match a chaos-free reference run exactly."""
    inner = [{"y": i} for i in range(6)]
    spec = chaos_spec(
        "robust-inner",
        inner,
        seed=33,
        policy=ChaosPolicy(rate=0.8, slow_s=0.05, attempts=1),
    )
    payload = {
        "target": "chaos",
        "points": [dict(p) for p in spec.points],
        "seed": 33,
        "timeout_s": 1.0,
        "max_attempts": 3,
        "workers": 4,
    }
    config = _config(tmp_path)

    async def body(server, client):
        await client.wait_healthy()
        status, job = await client.post_json("/jobs", payload)
        assert status == 202
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=60)
        assert events[-1][0] == "done" and events[-1][1]["errors"] == 0
        _, _, report = await client.request("GET", f"/jobs/{job['id']}/report")
        served = json.loads(report)
        reference = run_sweep(reference_spec(spec), workers=2)
        for point, ref in zip(served["points"], reference.points):
            assert point["result"] == ref.result

    asyncio.run(_with_server(config, body))
