"""Property-based tests across the core simulators (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import TINY_MLA_MOE, LayerKVCache, windowed_kv_cache_bytes
from repro.model.config import TINY_DENSE_GQA
from repro.network import ENDPOINT_LINK, Flow, FlowSimulator, Topology
from repro.parallel import ChunkCosts, analytic_dualpipe_bubble, simulate_pipeline
from repro.precision import E4M3, encode_tile, quantize_tiles


@settings(max_examples=20, deadline=None)
@given(
    ranks=st.sampled_from([2, 4, 6, 8]),
    microbatches=st.integers(1, 6),
    f=st.floats(0.1, 2.0),
    b_ratio=st.floats(0.5, 2.5),
    w_ratio=st.floats(0.1, 1.0),
)
def test_schedule_always_valid_and_work_conserving(ranks, microbatches, f, b_ratio, w_ratio):
    """Any DualPipe simulation: dependencies respected, no overlap,
    every rank executes exactly its chunk work."""
    costs = ChunkCosts(f, f * b_ratio, f * w_ratio)
    result = simulate_pipeline(ranks, microbatches, costs, bidirectional=True)
    result.validate()
    expected_busy = 2 * microbatches * costs.total
    for rank in range(ranks):
        assert result.busy_time(rank) == pytest.approx(expected_busy)
    # Total time at least the critical path lower bound.
    assert result.total_time >= expected_busy - 1e-9


@settings(max_examples=15, deadline=None)
@given(
    ranks=st.sampled_from([4, 8]),
    f=st.floats(0.2, 2.0),
)
def test_event_schedule_never_much_worse_than_analytic(ranks, f):
    costs = ChunkCosts(f, 1.8 * f, 0.4 * f)
    result = simulate_pipeline(ranks, 8, costs, bidirectional=True)
    busy = result.busy_time(0)
    analytic = busy + analytic_dualpipe_bubble(ranks, costs)
    assert result.total_time <= analytic * 1.6


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.floats(1e3, 1e9), min_size=1, max_size=8),
    bw=st.floats(1e9, 200e9),
)
def test_drain_mode_lower_bounds_event_mode(sizes, bw):
    """The fluid drain bound never exceeds the event simulation."""
    topo = Topology("pair")
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", bw, ENDPOINT_LINK)
    flows = [Flow("a", "b", s, ["a", "b"]) for s in sizes]
    sim = FlowSimulator(topo)
    drain = sim.simulate(flows, mode="drain").makespan
    event = sim.simulate(flows, mode="event").makespan
    assert drain <= event * (1 + 1e-9)
    # Single shared link: both are exactly total/capacity.
    assert drain == pytest.approx(sum(sizes) / bw, rel=1e-6)


@settings(max_examples=25, deadline=None)
@given(
    length=st.integers(1, 40),
    batch=st.integers(1, 3),
    cut=st.data(),
)
def test_kv_cache_truncate_roundtrip(length, batch, cut):
    """Append then truncate leaves a consistent cache of the new length."""
    cfg = TINY_MLA_MOE.attention
    cache = LayerKVCache(cfg, batch)
    rng = np.random.default_rng(0)
    latent = rng.normal(size=(batch, length, cfg.kv_lora_rank)).astype(np.float32)
    rope = rng.normal(size=(batch, length, cfg.qk_rope_head_dim)).astype(np.float32)
    cache.append_latent(latent, rope)
    keep = cut.draw(st.integers(0, length))
    cache.truncate(keep)
    assert len(cache) == keep
    assert np.array_equal(cache.latent, latent[:, :keep])
    assert np.array_equal(cache.rope_key, rope[:, :keep])


def test_kv_cache_truncate_validation():
    cache = LayerKVCache(TINY_DENSE_GQA.attention, 1)
    with pytest.raises(ValueError):
        cache.truncate(1)  # longer than contents
    cache.append_kv(
        np.zeros((1, 2, 3, 8), np.float32), np.zeros((1, 2, 3, 8), np.float32)
    )
    cache.truncate(2)
    assert len(cache) == 2
    assert cache.keys.shape[2] == 2


@settings(max_examples=25, deadline=None)
@given(window=st.integers(1, 10_000), context=st.integers(0, 100_000))
def test_windowed_kv_bounded_by_window(window, context):
    bytes_ = windowed_kv_cache_bytes(TINY_MLA_MOE, window, context)
    cap = windowed_kv_cache_bytes(TINY_MLA_MOE, window, window)
    assert bytes_ <= cap
    if context >= window:
        assert bytes_ == cap


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 500),
    rows=st.integers(1, 4),
    cols=st.integers(1, 260),
)
def test_tile_quantization_never_amplifies(seed, rows, cols):
    """No dequantized magnitude exceeds its tile's true maximum by more
    than half a quantization step."""
    x = np.random.default_rng(seed).normal(size=(rows, cols)).astype(np.float32)
    deq = quantize_tiles(x, E4M3, 128).dequantize()
    assert np.max(np.abs(deq)) <= np.max(np.abs(x)) * (1 + E4M3.epsilon)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 500), bits=st.integers(4, 12))
def test_logfmt_decode_within_range(seed, bits):
    """Decoded magnitudes never exceed the tile's true maximum."""
    x = np.random.default_rng(seed).normal(size=64).astype(np.float32)
    decoded = encode_tile(x, bits).decode()
    max_in = np.max(np.abs(x))
    assert np.max(np.abs(decoded)) <= max_in * (1 + 1e-5)
