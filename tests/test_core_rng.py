"""Shared seeded-RNG factory (repro.core.rng)."""

import numpy as np

from repro.core.rng import derive_seed, seeded_generator


def test_root_stream_matches_default_rng():
    a = seeded_generator(42).uniform(size=8)
    b = np.random.default_rng(42).uniform(size=8)
    assert np.array_equal(a, b)


def test_same_seed_and_stream_reproduce():
    a = seeded_generator(7, "arrivals").uniform(size=8)
    b = seeded_generator(7, "arrivals").uniform(size=8)
    assert np.array_equal(a, b)


def test_streams_are_decorrelated():
    a = seeded_generator(7, "arrivals").uniform(size=8)
    b = seeded_generator(7, "mtp").uniform(size=8)
    c = seeded_generator(8, "arrivals").uniform(size=8)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)


def test_derive_seed_is_a_pure_function():
    assert derive_seed(7, "sweep/serving/{}") == derive_seed(7, "sweep/serving/{}")
    assert derive_seed(7, "a") != derive_seed(7, "b")
    assert derive_seed(7, "a") != derive_seed(8, "a")


def test_derive_seed_is_a_valid_64_bit_seed():
    for seed in (0, 1, 2**31):
        child = derive_seed(seed, "stream")
        assert 0 <= child < 2**64
        # A derived seed must itself seed a generator deterministically.
        a = seeded_generator(child).uniform(size=4)
        b = seeded_generator(child).uniform(size=4)
        assert np.array_equal(a, b)
