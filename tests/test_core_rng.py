"""Shared seeded-RNG factory (repro.core.rng)."""

import numpy as np

from repro.core.rng import seeded_generator


def test_root_stream_matches_default_rng():
    a = seeded_generator(42).uniform(size=8)
    b = np.random.default_rng(42).uniform(size=8)
    assert np.array_equal(a, b)


def test_same_seed_and_stream_reproduce():
    a = seeded_generator(7, "arrivals").uniform(size=8)
    b = seeded_generator(7, "arrivals").uniform(size=8)
    assert np.array_equal(a, b)


def test_streams_are_decorrelated():
    a = seeded_generator(7, "arrivals").uniform(size=8)
    b = seeded_generator(7, "mtp").uniform(size=8)
    c = seeded_generator(8, "arrivals").uniform(size=8)
    assert not np.array_equal(a, b)
    assert not np.array_equal(a, c)
