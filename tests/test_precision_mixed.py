"""Mixed FP8/BF16 and E5M6 combine-format study (§3.2)."""

import numpy as np
import pytest

from repro.precision import (
    BF16,
    combine_format_study,
    fake_quantize,
    mixed_bits_per_element,
    mixed_fp8_bf16_quantize,
    relative_error,
    E4M3,
)

from repro.core.rng import seeded_generator as RNG


def _activations(seed=0, shape=(16, 512)):
    rng = RNG(seed)
    return (rng.normal(size=shape) * np.exp(rng.normal(0, 1, size=shape))).astype(
        np.float32
    )


def test_fraction_zero_equals_fp8():
    x = _activations()
    mixed = mixed_fp8_bf16_quantize(x, 0.0)
    pure = fake_quantize(x, E4M3, 128)
    assert np.allclose(mixed, pure)


def test_fraction_one_equals_bf16():
    x = _activations(1)
    mixed = mixed_fp8_bf16_quantize(x, 1.0)
    assert np.allclose(mixed, BF16.quantize(x))


def test_error_decreases_with_bf16_fraction():
    x = _activations(2)
    errs = [
        relative_error(x, mixed_fp8_bf16_quantize(x, f)) for f in (0.0, 0.25, 0.5, 1.0)
    ]
    assert errs == sorted(errs, reverse=True)


def test_mixed_preserves_shape_and_partial_tiles():
    x = _activations(3, shape=(3, 200))  # partial final tile
    out = mixed_fp8_bf16_quantize(x, 0.3)
    assert out.shape == x.shape
    assert np.all(np.isfinite(out))


def test_fraction_validation():
    with pytest.raises(ValueError):
        mixed_fp8_bf16_quantize(np.ones((1, 8)), 1.5)
    with pytest.raises(ValueError):
        mixed_bits_per_element(-0.1)


def test_bits_accounting_monotonic():
    bits = [mixed_bits_per_element(f) for f in (0.0, 0.5, 1.0)]
    assert bits == sorted(bits)
    assert bits[0] == pytest.approx(8 + 32 / 128 + 1 / 128)
    assert bits[2] == pytest.approx(16 + 1 / 128)


def test_combine_study_contains_all_candidates():
    study = combine_format_study(_activations(4))
    names = {c.name for c in study}
    assert {"BF16", "E5M6 (1x128)", "E4M3 (1x128)", "E5M2 (1x128)", "LogFMT-8", "LogFMT-10"} <= names
    assert any("mixed" in n for n in names)


def test_combine_study_orderings():
    """§3.2's qualitative conclusions: BF16 most accurate; E5M6 sits between
    BF16 and FP8; LogFMT-8 beats both FP8 flavours at equal bits."""
    study = {c.name: c for c in combine_format_study(_activations(5))}
    assert study["BF16"].relative_error < study["E5M6 (1x128)"].relative_error
    assert study["E5M6 (1x128)"].relative_error < study["E4M3 (1x128)"].relative_error
    assert study["LogFMT-8"].relative_error < study["E4M3 (1x128)"].relative_error
    assert study["LogFMT-8"].relative_error < study["E5M2 (1x128)"].relative_error
    assert study["BF16"].bits_per_element > study["LogFMT-8"].bits_per_element


def test_mixed_beats_pure_fp8_at_modest_extra_bits():
    x = _activations(6)
    study = {c.name: c for c in combine_format_study(x)}
    mixed = study["mixed FP8/BF16 (25% BF16)"]
    fp8 = study["E4M3 (1x128)"]
    assert mixed.relative_error < fp8.relative_error
    assert mixed.bits_per_element < study["BF16"].bits_per_element
