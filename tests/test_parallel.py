"""Pipeline schedules, MFU accounting and the Table 4 training model."""

import pytest

from repro.model import DEEPSEEK_V3
from repro.parallel import (
    ChunkCosts,
    TrainingJobConfig,
    analytic_1f1b_bubble,
    analytic_dualpipe_bubble,
    mfu_report,
    simulate_pipeline,
    simulate_training_step,
    tokens_per_day,
)

COSTS = ChunkCosts(forward=1.0, backward_input=1.8, backward_weight=0.4)


def test_chunk_costs_validation():
    with pytest.raises(ValueError):
        ChunkCosts(-1.0, 1.0, 1.0)
    assert COSTS.total == pytest.approx(3.2)


def test_schedule_valid_and_complete():
    result = simulate_pipeline(4, 6, COSTS, bidirectional=True)
    result.validate()
    # 2 directions x 6 micro-batches x 4 stages x 3 kinds tasks total.
    assert len(result.tasks) == 2 * 6 * 4 * 3


def test_schedule_unidirectional():
    result = simulate_pipeline(4, 8, COSTS, bidirectional=False)
    result.validate()
    assert len(result.tasks) == 8 * 4 * 3


def test_busy_time_accounts_all_work():
    result = simulate_pipeline(4, 6, COSTS, bidirectional=True)
    # Every rank runs F+B+W for 12 micro-batches (6 per direction).
    for rank in range(4):
        assert result.busy_time(rank) == pytest.approx(12 * COSTS.total)


def test_bubble_nonnegative_and_bounded():
    result = simulate_pipeline(8, 10, COSTS, bidirectional=True)
    assert 0 <= result.mean_bubble < result.total_time
    assert 0 <= result.bubble_fraction < 0.5


def test_dualpipe_bubble_smaller_than_1f1b():
    assert analytic_dualpipe_bubble(16, COSTS) < analytic_1f1b_bubble(16, COSTS)


def test_comm_latency_stretches_schedule():
    fast = simulate_pipeline(4, 4, COSTS, comm_latency=0.0)
    slow = simulate_pipeline(4, 4, COSTS, comm_latency=0.5)
    assert slow.total_time > fast.total_time


def test_schedule_input_validation():
    with pytest.raises(ValueError):
        simulate_pipeline(0, 4, COSTS)
    with pytest.raises(ValueError):
        simulate_pipeline(4, 0, COSTS)


def test_kind_time_decomposition():
    result = simulate_pipeline(4, 4, COSTS)
    for rank in range(4):
        total = sum(result.kind_time(rank, k) for k in ("F", "B", "W"))
        assert total == pytest.approx(result.busy_time(rank))


# --- Table 4 ------------------------------------------------------------


def test_job_config_derived_quantities():
    cfg = TrainingJobConfig()
    assert cfg.data_parallel == 128
    assert cfg.tokens_per_step == 15360 * 4096
    assert cfg.microbatches_per_rank == 120


def test_job_config_validation():
    with pytest.raises(ValueError):
        TrainingJobConfig(num_gpus=100, pipeline_parallel=16)
    with pytest.raises(ValueError):
        TrainingJobConfig(pipeline_parallel=15)
    with pytest.raises(ValueError):
        TrainingJobConfig(kernel_efficiency=0.0)


def test_table4_step_time_and_throughput():
    """Table 4: ~19.9 s/step, ~273 B tokens/day on 2048 H800s."""
    report = simulate_training_step(TrainingJobConfig())
    assert report.step_time == pytest.approx(19.93, rel=0.05)
    assert report.tokens_per_day == pytest.approx(272.8e9, rel=0.05)


def test_table4_mfu():
    """Table 4: causal MFU ~38.9%, non-causal ~43.7%."""
    report = simulate_training_step(TrainingJobConfig())
    mfu = report.mfu
    assert mfu.mfu(causal=True) == pytest.approx(0.3894, rel=0.05)
    assert mfu.mfu(causal=False) == pytest.approx(0.4373, rel=0.05)
    assert mfu.tflops(causal=True) == pytest.approx(385, rel=0.05)
    assert mfu.tflops(causal=False) == pytest.approx(432, rel=0.05)


def test_table4_phase_decomposition_shape():
    """Phase ordering matches the measured rows: 1F1B dominates, then
    bubble, then 1B > 1F > 1W > opt."""
    r = simulate_training_step(TrainingJobConfig())
    assert r.steady_phase > r.bubble
    assert r.warmup_backward > r.warmup_forward > r.weight_grad
    assert r.busy == pytest.approx(
        r.warmup_forward + r.warmup_backward + r.weight_grad + r.steady_phase
    )


def test_mpft_mrft_parity_under_overlap():
    """Table 4's headline: both fabrics give the same step time because
    EP communication is overlapped (comm_latency contribution ~0)."""
    a = simulate_training_step(TrainingJobConfig(), comm_latency=0.0)
    b = simulate_training_step(TrainingJobConfig(), comm_latency=0.0)
    assert a.step_time == b.step_time


def test_event_bubble_model_is_at_most_analytic():
    cfg = TrainingJobConfig(global_batch_sequences=2048, num_gpus=1024, pipeline_parallel=8)
    analytic = simulate_training_step(cfg, bubble_model="analytic")
    event = simulate_training_step(cfg, bubble_model="event")
    assert event.bubble <= analytic.bubble * 1.5
    with pytest.raises(ValueError):
        simulate_training_step(cfg, bubble_model="magic")


def test_mfu_report_validation():
    with pytest.raises(ValueError):
        mfu_report(DEEPSEEK_V3, 0, 1.0, 10)


def test_tokens_per_day_helper():
    assert tokens_per_day(1e6, 86_400) == pytest.approx(1e6)
    with pytest.raises(ValueError):
        tokens_per_day(1e6, 0)


def test_more_gpus_more_tokens_per_day():
    small = simulate_training_step(TrainingJobConfig(num_gpus=1024, global_batch_sequences=7680))
    big = simulate_training_step(TrainingJobConfig())
    assert big.tokens_per_day > small.tokens_per_day
