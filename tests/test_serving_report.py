"""Report semantics: degenerate (single-token) requests, SLO rules."""

import pytest

from repro.serving import SLO, ServingSimulator, SimConfig, WorkloadSpec, build_report
from repro.serving.workload import Request


def _completed(rid, arrival, first_token, finish, generated) -> Request:
    return Request(
        rid=rid,
        arrival=arrival,
        prompt_tokens=64,
        output_tokens=generated,
        first_token_time=first_token,
        finish_time=finish,
        generated=generated,
    )


def test_single_token_request_has_no_tpot():
    request = _completed(0, 0.0, 1.0, 1.0, generated=1)
    assert not request.has_tpot
    assert request.tpot == 0.0
    assert request.ttft == 1.0


def test_slo_tpot_is_vacuous_for_degenerate_requests():
    slo = SLO(ttft=2.0, tpot=0.1)
    # One generated token, fast TTFT: counts as SLO-met (TTFT decides).
    assert slo.met_by(_completed(0, 0.0, 1.0, 1.0, generated=1))
    # One generated token, slow TTFT: TTFT still gates it.
    assert not slo.met_by(_completed(1, 0.0, 3.0, 3.0, generated=1))
    # Multi-token requests are judged on both objectives.
    assert slo.met_by(_completed(2, 0.0, 1.0, 1.5, generated=11))  # tpot 0.05
    assert not slo.met_by(_completed(3, 0.0, 1.0, 3.0, generated=11))  # tpot 0.2


def test_report_excludes_degenerate_requests_from_tpot_stats():
    finished = [
        _completed(0, 0.0, 1.0, 1.0, generated=1),  # degenerate
        _completed(1, 0.0, 1.0, 2.0, generated=21),  # tpot 0.05
        _completed(2, 0.0, 1.0, 3.0, generated=21),  # tpot 0.1
    ]
    report = build_report(finished, SLO(), 10.0, 0, 0, 0, 0, 0, [], [])
    assert report.completed == 3
    # Without the degenerate request pulling in an artificial 0.0:
    assert report.tpot.p50 == pytest.approx(0.075)
    assert report.tpot.mean == pytest.approx(0.075)
    # TTFT/E2E still cover every completion.
    assert report.ttft.max == pytest.approx(1.0)
    assert report.e2e.max == pytest.approx(3.0)
    # All three met the SLO (the degenerate one via fast TTFT).
    assert report.slo_attainment == 1.0
    assert report.goodput_requests_per_s == pytest.approx(0.3)


def test_report_all_degenerate_requests():
    finished = [_completed(i, 0.0, 0.5, 0.5, generated=1) for i in range(4)]
    report = build_report(finished, SLO(), 2.0, 0, 0, 0, 0, 0, [], [])
    assert report.completed == 4
    assert report.tpot.p99 == 0.0  # empty TPOT distribution, defined as zeros
    assert report.slo_attainment == 1.0


def test_zero_duration_rates_are_zero():
    report = build_report([], SLO(), 0.0, 0, 0, 0, 0, 0, [], [])
    assert report.throughput_tokens_per_s == 0.0
    assert report.goodput_requests_per_s == 0.0
    assert report.slo_attainment == 0.0


def test_simulated_single_token_workload():
    """End to end: a whole workload of single-token outputs completes
    and reports a zero TPOT distribution, not a crash or fake goodput."""
    workload = WorkloadSpec(
        request_rate=4.0,
        num_requests=20,
        prompt_mean=128,
        prompt_cv=0.0,
        output_mean=1,
        output_cv=0.0,
    )
    report = ServingSimulator(SimConfig(workload=workload)).run()
    assert report.completed == 20
    assert report.tokens_generated == 20
    assert report.tpot.p99 == 0.0
    assert 0 <= report.slo_attainment <= 1


def test_compact_record_economics_fields_are_opt_in():
    from repro.serving import compact_record
    from repro.serving.report import build_report

    report = build_report(
        [_completed(1, 0.0, 0.5, 2.0, generated=100)],
        SLO(), duration=10.0, preemptions=0, decode_steps=10,
        prefill_batches=1, draft_attempts=0, draft_accepted=0,
        queue_trace=[(0.0, 0)], kv_trace=[(0.0, 0.0)],
    )
    plain = compact_record(report)
    assert "cost_per_token" not in plain and "goodput_tokens_per_s" not in plain
    priced = compact_record(report, gpus=8, gpu_cost_per_hour=2.0)
    # 8 GPUs x $2/h / 3600 s/h / (100 tokens / 10 s) = $4.44e-4/token
    assert priced["cost_per_token"] == pytest.approx(8 * 2.0 / 3600.0 / 10.0)
    assert priced["goodput_tokens_per_s"] == pytest.approx(
        report.throughput_tokens_per_s * report.slo_attainment
    )
    # Everything else is byte-identical to the un-priced record.
    priced.pop("cost_per_token"), priced.pop("goodput_tokens_per_s")
    assert priced == plain
    with pytest.raises(ValueError):
        compact_record(report, gpu_cost_per_hour=2.0)  # gpus required


def test_compact_record_zero_token_cost_is_null():
    from repro.serving import compact_record
    from repro.serving.report import build_report

    report = build_report(
        [], SLO(), duration=0.0, preemptions=0, decode_steps=0,
        prefill_batches=0, draft_attempts=0, draft_accepted=0,
        queue_trace=[], kv_trace=[],
    )
    record = compact_record(report, gpus=8, gpu_cost_per_hour=2.0)
    assert record["cost_per_token"] is None
    assert record["goodput_tokens_per_s"] == 0.0


def test_serving_target_gpu_cost_per_hour_rides_the_sweep():
    from repro.sweep import get_target

    base = {"num_requests": 10, "prompt_mean": 64, "output_mean": 16}
    fn = get_target("serving")
    plain = fn(dict(base), seed=3)
    priced = fn({**base, "gpu_cost_per_hour": 2.0}, seed=3)
    assert "cost_per_token" not in plain
    assert priced["cost_per_token"] > 0
    assert priced["goodput_tokens_per_s"] == pytest.approx(
        priced["throughput_tokens_per_s"] * priced["slo_attainment"]
    )
