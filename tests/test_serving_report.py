"""Report semantics: degenerate (single-token) requests, SLO rules."""

import pytest

from repro.serving import SLO, ServingSimulator, SimConfig, WorkloadSpec, build_report
from repro.serving.workload import Request


def _completed(rid, arrival, first_token, finish, generated) -> Request:
    return Request(
        rid=rid,
        arrival=arrival,
        prompt_tokens=64,
        output_tokens=generated,
        first_token_time=first_token,
        finish_time=finish,
        generated=generated,
    )


def test_single_token_request_has_no_tpot():
    request = _completed(0, 0.0, 1.0, 1.0, generated=1)
    assert not request.has_tpot
    assert request.tpot == 0.0
    assert request.ttft == 1.0


def test_slo_tpot_is_vacuous_for_degenerate_requests():
    slo = SLO(ttft=2.0, tpot=0.1)
    # One generated token, fast TTFT: counts as SLO-met (TTFT decides).
    assert slo.met_by(_completed(0, 0.0, 1.0, 1.0, generated=1))
    # One generated token, slow TTFT: TTFT still gates it.
    assert not slo.met_by(_completed(1, 0.0, 3.0, 3.0, generated=1))
    # Multi-token requests are judged on both objectives.
    assert slo.met_by(_completed(2, 0.0, 1.0, 1.5, generated=11))  # tpot 0.05
    assert not slo.met_by(_completed(3, 0.0, 1.0, 3.0, generated=11))  # tpot 0.2


def test_report_excludes_degenerate_requests_from_tpot_stats():
    finished = [
        _completed(0, 0.0, 1.0, 1.0, generated=1),  # degenerate
        _completed(1, 0.0, 1.0, 2.0, generated=21),  # tpot 0.05
        _completed(2, 0.0, 1.0, 3.0, generated=21),  # tpot 0.1
    ]
    report = build_report(finished, SLO(), 10.0, 0, 0, 0, 0, 0, [], [])
    assert report.completed == 3
    # Without the degenerate request pulling in an artificial 0.0:
    assert report.tpot.p50 == pytest.approx(0.075)
    assert report.tpot.mean == pytest.approx(0.075)
    # TTFT/E2E still cover every completion.
    assert report.ttft.max == pytest.approx(1.0)
    assert report.e2e.max == pytest.approx(3.0)
    # All three met the SLO (the degenerate one via fast TTFT).
    assert report.slo_attainment == 1.0
    assert report.goodput_requests_per_s == pytest.approx(0.3)


def test_report_all_degenerate_requests():
    finished = [_completed(i, 0.0, 0.5, 0.5, generated=1) for i in range(4)]
    report = build_report(finished, SLO(), 2.0, 0, 0, 0, 0, 0, [], [])
    assert report.completed == 4
    assert report.tpot.p99 == 0.0  # empty TPOT distribution, defined as zeros
    assert report.slo_attainment == 1.0


def test_zero_duration_rates_are_zero():
    report = build_report([], SLO(), 0.0, 0, 0, 0, 0, 0, [], [])
    assert report.throughput_tokens_per_s == 0.0
    assert report.goodput_requests_per_s == 0.0
    assert report.slo_attainment == 0.0


def test_simulated_single_token_workload():
    """End to end: a whole workload of single-token outputs completes
    and reports a zero TPOT distribution, not a crash or fake goodput."""
    workload = WorkloadSpec(
        request_rate=4.0,
        num_requests=20,
        prompt_mean=128,
        prompt_cv=0.0,
        output_mean=1,
        output_cv=0.0,
    )
    report = ServingSimulator(SimConfig(workload=workload)).run()
    assert report.completed == 20
    assert report.tokens_generated == 20
    assert report.tpot.p99 == 0.0
    assert 0 <= report.slo_attainment <= 1
