"""Hierarchical NVLink+IB all-reduce."""

import pytest

from repro.network import (
    build_mpft_cluster,
    build_mrft_cluster,
    flat_ring_allreduce_time,
    run_hierarchical_allreduce,
)

SIZE = 1 << 28  # 256 MiB per GPU


def test_phase_times_positive_and_sum():
    c = build_mpft_cluster(4)
    result = run_hierarchical_allreduce(c, SIZE)
    assert result.intra_reduce_time > 0
    assert result.inter_ring_time > 0
    assert result.intra_gather_time == result.intra_reduce_time
    assert result.total_time == pytest.approx(
        result.intra_reduce_time + result.inter_ring_time + result.intra_gather_time
    )


def test_hierarchical_beats_flat_ring():
    """Shard-per-GPU inter-node traffic (S/G) beats pushing the whole
    buffer through the slow NIC hops — why collectives are
    hierarchy-aware on 4:1 bandwidth nodes."""
    c = build_mpft_cluster(8)
    hier = run_hierarchical_allreduce(c, SIZE).total_time
    flat = flat_ring_allreduce_time(c, SIZE)
    assert flat > 2 * hier


def test_single_node_skips_inter_ring():
    c = build_mpft_cluster(1)
    result = run_hierarchical_allreduce(c, SIZE)
    assert result.inter_ring_time == 0.0
    assert result.total_time > 0


def test_zero_bytes_zero_time():
    c = build_mpft_cluster(2)
    assert run_hierarchical_allreduce(c, 0.0).total_time == 0.0


def test_negative_bytes_rejected():
    c = build_mpft_cluster(2)
    with pytest.raises(ValueError):
        run_hierarchical_allreduce(c, -1.0)
    with pytest.raises(ValueError):
        flat_ring_allreduce_time(c, -1.0)


def test_mpft_mrft_parity_for_allreduce():
    """Same-plane rings never cross planes, so MPFT == MRFT here too."""
    a = run_hierarchical_allreduce(build_mpft_cluster(4), SIZE)
    b = run_hierarchical_allreduce(build_mrft_cluster(4), SIZE)
    assert a.total_time == pytest.approx(b.total_time, rel=1e-9)


def test_inter_ring_bound_by_nic():
    """The inter-node phase drains each NIC's 2(N-1)/N x S/G volume at
    the 40 GB/s effective rate."""
    c = build_mpft_cluster(4)
    result = run_hierarchical_allreduce(c, SIZE)
    expected = 2 * (SIZE / 8) * (3 / 4) / 40e9
    assert result.inter_ring_time == pytest.approx(expected, rel=0.01)


def test_busbw_convention():
    c = build_mpft_cluster(4)
    result = run_hierarchical_allreduce(c, SIZE)
    assert result.busbw == pytest.approx(2 * result.algbw)
    assert result.busbw > 40e9  # hierarchy exceeds a single NIC's rate
