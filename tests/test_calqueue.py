"""CalendarQueue vs heapq: pop-order equivalence property tests.

The serving simulator's golden pins (byte-identical SimReports and
trace SHA-256) only survive the heap → calendar-queue swap if the two
structures agree on the order of *every* event, including same-time
ties broken by ``(kind, seq)``.  These tests hammer that equivalence
with seeded random event streams across bucket widths and arrival
regimes — clustered, sparse, heavily tied, interleaved push/pop —
against a plain ``heapq`` reference.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.serving.calqueue import CalendarQueue


def _stream(rng: random.Random, n: int, *, time_quantum: float | None, spread: float):
    """Seeded event stream: near-monotone times like a DES produces.

    ``time_quantum`` snaps times to a grid so exact duplicates are
    common (the tie-break-by-``(kind, seq)`` path); ``spread`` scales
    how far ahead of the current clock events are scheduled.
    """
    events = []
    now = 0.0
    for seq in range(n):
        now += rng.random() * spread * 0.1
        t = now + rng.random() * spread
        if time_quantum is not None:
            t = round(t / time_quantum) * time_quantum
        events.append((t, rng.randrange(6), seq, f"payload{seq}"))
    return events


def _drain_both(queue: CalendarQueue, reference: list) -> None:
    heapq.heapify(reference)
    while reference:
        expected = heapq.heappop(reference)
        assert queue
        assert queue.pop() == expected
    assert not queue
    with pytest.raises(IndexError):
        queue.pop()


@pytest.mark.parametrize("width", [0.05, 1.0, 17.0])
@pytest.mark.parametrize("quantum", [None, 0.25])
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_pop_order_matches_heapq_bulk(width, quantum, seed):
    rng = random.Random(seed)
    events = _stream(rng, 500, time_quantum=quantum, spread=2.0)
    queue = CalendarQueue(bucket_width=width)
    for event in events:
        queue.push(event)
    assert len(queue) == len(events)
    _drain_both(queue, list(events))


@pytest.mark.parametrize("seed", range(8))
def test_pop_order_matches_heapq_interleaved(seed):
    """The DES access pattern: pops interleaved with pushes whose times
    never precede the last popped event (events schedule the future)."""
    rng = random.Random(100 + seed)
    queue = CalendarQueue(bucket_width=0.5)
    reference: list = []
    seq = 0
    now = 0.0
    popped = []
    expected = []
    for _ in range(400):
        burst = rng.randrange(4)
        for _ in range(burst):
            # Delay 0 exercises push-at-the-current-instant (same
            # bucket as the one being drained).
            delay = rng.choice([0.0, rng.random() * 3.0, rng.random() * 40.0])
            event = (now + delay, rng.randrange(6), seq, seq)
            seq += 1
            queue.push(event)
            heapq.heappush(reference, event)
        if reference and rng.random() < 0.6:
            expected.append(heapq.heappop(reference))
            item = queue.pop()
            popped.append(item)
            now = item[0]
    while reference:
        expected.append(heapq.heappop(reference))
        popped.append(queue.pop())
    assert popped == expected
    assert not queue


def test_identical_timestamps_break_ties_by_kind_then_seq():
    queue = CalendarQueue(bucket_width=1.0)
    events = [(1.0, kind, seq, None) for kind in (3, 1, 2, 0) for seq in (7, 2, 9)]
    for event in events:
        queue.push(event)
    drained = [queue.pop() for _ in range(len(events))]
    assert drained == sorted(events)
    kinds_seqs = [(kind, seq) for _, kind, seq, _ in drained]
    assert kinds_seqs == sorted(kinds_seqs)


def test_sparse_far_future_events_skip_empty_buckets():
    """A tiny width against a huge time span must not scan bucket by
    bucket: the index heap jumps straight to occupied buckets."""
    queue = CalendarQueue(bucket_width=1e-3)
    events = [(float(10**k), 0, k, k) for k in range(8)]
    for event in reversed(events):
        queue.push(event)
    assert [queue.pop() for _ in range(len(events))] == sorted(events)


def test_non_monotone_push_still_sorts_against_pending():
    """Pushing at (or before) the current instant lands in the live
    bucket heap and still pops in global order."""
    queue = CalendarQueue(bucket_width=1.0)
    queue.push((0.25, 0, 0, "a"))
    queue.push((0.75, 0, 1, "b"))
    assert queue.pop() == (0.25, 0, 0, "a")
    queue.push((0.3, 0, 2, "c"))  # behind "b", same bucket as the clock
    assert queue.pop() == (0.3, 0, 2, "c")
    assert queue.pop() == (0.75, 0, 1, "b")
    assert not queue


def test_width_validation():
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=0.0)
    with pytest.raises(ValueError):
        CalendarQueue(bucket_width=-1.0)
