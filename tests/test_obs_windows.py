"""Windowed aggregation (repro.obs.windows): indices, rollups, merging."""

import json

import numpy as np
import pytest

from repro.obs import (
    Histogram,
    WindowedMetrics,
    merge_window_rollups,
    window_summaries,
)


# -- window membership -----------------------------------------------------


def test_tumbling_indices_are_half_open():
    w = WindowedMetrics(2.0)
    assert list(w._indices(0.0)) == [0]
    assert list(w._indices(1.999)) == [0]
    assert list(w._indices(2.0)) == [1]  # boundary belongs to the next window
    assert list(w._indices(5.0)) == [2]
    assert list(w._indices(-0.5)) == []


def test_sliding_windows_overlap():
    w = WindowedMetrics(4.0, slide_s=2.0)
    # t=5 lies in [2, 6) and [4, 8): windows 1 and 2.
    assert list(w._indices(5.0)) == [1, 2]
    w.count("arrivals", 5.0)
    rollup = w.rollup()
    hit = [win["index"] for win in rollup if win["counters"].get("arrivals")]
    assert hit == [1, 2]


def test_constructor_validation():
    with pytest.raises(ValueError):
        WindowedMetrics(0.0)
    with pytest.raises(ValueError):
        WindowedMetrics(2.0, slide_s=3.0)  # slide > width
    with pytest.raises(ValueError):
        WindowedMetrics(2.0, slide_s=0.0)


# -- rollup ----------------------------------------------------------------


def test_rollup_materializes_empty_windows():
    """A total outage must appear as an empty window, not vanish."""
    w = WindowedMetrics(1.0)
    w.count("finished", 0.5)
    w.count("finished", 3.5)  # nothing in windows 1 and 2
    rollup = w.rollup()
    assert [win["index"] for win in rollup] == [0, 1, 2, 3]
    assert rollup[1]["counters"] == {} and rollup[2]["counters"] == {}
    assert rollup[0]["start"] == 0.0 and rollup[3]["end"] == 4.0


def test_rollup_is_json_and_channels_fold():
    w = WindowedMetrics(2.0)
    w.count("arrivals", 0.1)
    w.count("tokens", 0.2, amount=64)
    w.sample("queue_depth", 0.3, 2.0)
    w.sample("queue_depth", 0.4, 6.0)
    w.observe("ttft", 0.5, 0.12)
    rollup = json.loads(json.dumps(w.rollup()))  # JSON-serializable
    win = rollup[0]
    assert win["counters"] == {"arrivals": 1, "tokens": 64}
    assert win["stats"]["queue_depth"] == {"count": 2, "total": 8.0, "max": 6.0}
    assert Histogram.from_dict(win["histograms"]["ttft"]).count == 1


def test_empty_windowed_metrics_rolls_up_empty():
    assert WindowedMetrics(1.0).rollup() == []


# -- merging ---------------------------------------------------------------


def _rollup_with(seed: int, n: int = 400) -> tuple[list[dict], np.ndarray]:
    rng = np.random.default_rng(seed)
    samples = rng.exponential(0.05, size=n)
    w = WindowedMetrics(2.0)
    for i, value in enumerate(samples):
        t = 8.0 * i / n
        w.count("finished", t)
        w.observe("ttft", t, float(value))
    return w.rollup(), samples


def test_merge_is_exact_and_associative():
    (a, sa), (b, sb), (c, sc) = (_rollup_with(s) for s in (1, 2, 3))
    left = merge_window_rollups([merge_window_rollups([a, b]), c])
    right = merge_window_rollups([a, merge_window_rollups([b, c])])
    assert left == right
    total = sum(win["counters"]["finished"] for win in left)
    assert total == len(sa) + len(sb) + len(sc)
    # Merged histogram percentiles match pooling the raw samples.
    merged = Histogram("ttft", growth=1.02)
    for win in left:
        merged.merge(Histogram.from_dict(win["histograms"]["ttft"]))
    pooled = np.concatenate([sa, sb, sc])
    for q in (50, 95, 99):
        exact = float(np.percentile(pooled, q))
        assert abs(merged.percentile(q) - exact) / exact < 0.03, q


def test_merge_does_not_mutate_inputs():
    a, _ = _rollup_with(1)
    b, _ = _rollup_with(2)
    before = json.dumps([a, b], sort_keys=True)
    merge_window_rollups([a, b])
    assert json.dumps([a, b], sort_keys=True) == before


def test_merge_rejects_geometry_mismatch():
    wa = WindowedMetrics(2.0)
    wa.count("finished", 0.5)
    wb = WindowedMetrics(3.0)
    wb.count("finished", 0.5)
    with pytest.raises(ValueError, match="geometry"):
        merge_window_rollups([wa.rollup(), wb.rollup()])


# -- summaries -------------------------------------------------------------


def test_window_summaries_rates_and_attainment():
    w = WindowedMetrics(2.0)
    for t in (0.1, 0.2, 0.3):
        w.count("arrivals", t)
    w.count("finished", 0.5, amount=2)
    w.count("slo_met", 0.5)
    w.count("tokens", 0.5, amount=128)
    w.count("arrivals", 2.5)  # window 1: arrivals but nothing finished
    w.count("finished", 4.5)  # window 2 exists so window 1 is materialized
    w.count("slo_met", 4.5)
    summaries = window_summaries(w.rollup())
    assert summaries[0]["slo_attainment"] == 0.5
    assert summaries[0]["throughput_tokens_per_s"] == 64.0
    assert summaries[0]["goodput_requests_per_s"] == 0.5
    assert summaries[1]["slo_attainment"] == 0.0  # outage window, not no-data
    assert summaries[2]["slo_attainment"] == 1.0


def test_window_summaries_no_traffic_is_none():
    w = WindowedMetrics(1.0)
    w.sample("queue_depth", 0.5, 3.0)  # a gauge sample is not traffic
    summary = window_summaries(w.rollup())[0]
    assert summary["slo_attainment"] is None
    assert summary["queue_depth"] == 3.0 and summary["queue_depth_max"] == 3.0


def test_window_summaries_histogram_fields():
    w = WindowedMetrics(2.0)
    for value in (0.01, 0.02, 0.04):
        w.count("finished", 0.5)
        w.observe("ttft", 0.5, value)
    summary = window_summaries(w.rollup())[0]
    assert summary["ttft_count"] == 3
    assert summary["ttft_mean"] == pytest.approx(0.07 / 3)
    assert summary["ttft_max"] == pytest.approx(0.04)
    assert 0 < summary["ttft_p50"] <= summary["ttft_p95"] <= summary["ttft_p99"]
