"""End-to-end tests for the experiment service (repro.service).

Everything runs over real sockets on ephemeral ports: in-process
servers (fast, lets tests register custom sweep targets) for the
submit/stream/backpressure/cancel paths, and a genuine ``repro serve``
subprocess killed with SIGKILL for the session-resume invariant.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service import (
    EventBroker,
    ExperimentServer,
    ServiceClient,
    ServiceConfig,
)
from repro.sweep import SweepSpec, grid, register_target, run_sweep

SRC = Path(__file__).resolve().parent.parent / "src"

SERVING_BASE = {"num_requests": 20, "prompt_mean": 64, "output_mean": 16}


@register_target("svc-sleepy")
def _sleepy_target(config: dict, seed: int) -> dict:
    time.sleep(config.get("sleep_s", 0.1))
    return {"x": config.get("x", 0), "seed": seed}


@register_target("svc-flaky")
def _flaky_target(config: dict, seed: int) -> dict:
    if config.get("x", 0) % 2 == 0:
        raise ValueError(f"point {config['x']} exploded")
    return {"x": config["x"]}


def _config(tmp_path: Path, **overrides) -> ServiceConfig:
    defaults = dict(
        state_dir=tmp_path / "state",
        cache_dir=tmp_path / "cache",
        heartbeat_s=0.2,
        metrics_interval_s=0.05,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


async def _with_server(config: ServiceConfig, body) -> None:
    server = ExperimentServer(config)
    await server.start()
    try:
        await body(server, ServiceClient(server.host, server.port))
    finally:
        await server.stop()


def _counts(events: list[tuple[str, dict]]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for event, _ in events:
        counts[event] = counts.get(event, 0) + 1
    return counts


# ---------------------------------------------------------------------------
# submit → SSE stream → artifacts
# ---------------------------------------------------------------------------


def test_submit_stream_and_artifacts(tmp_path):
    spec = {
        "target": "serving",
        "grid": {"request_rate": [4, 8]},
        "base": SERVING_BASE,
        "seed": 3,
    }

    async def body(server, client):
        health = await client.wait_healthy()
        assert health["ok"] and health["jobs"] == 0
        status, job = await client.post_json("/jobs", spec)
        assert status == 202 and job["state"] in ("queued", "running")
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        # One progress event per evaluated point, each index exactly once.
        progress = [d for e, d in events if e == "progress"]
        assert sorted(p["index"] for p in progress) == [0, 1]
        assert events[-1][0] == "done"
        assert events[-1][1]["evaluated"] == 2 and events[-1][1]["errors"] == 0

        status, detail = await client.get_json(f"/jobs/{job['id']}")
        assert status == 200 and detail["state"] == "done"
        assert detail["evaluated"] == 2 and detail["cache_hits"] == 0
        assert "sweep.progress" in detail["metrics"]

        status, listing = await client.get_json("/jobs")
        assert status == 200 and [j["id"] for j in listing["jobs"]] == [job["id"]]

        # The report artifact is the cache-independent sweep document,
        # byte-identical to a direct uncached run of the same spec.
        status, _, report = await client.request("GET", f"/jobs/{job['id']}/report")
        assert status == 200
        direct = run_sweep(
            SweepSpec(
                target="serving",
                points=grid(request_rate=[4, 8]),
                base=SERVING_BASE,
                seed=3,
            ),
            cache=None,
        )
        assert report == direct.to_report_json().encode()

        status, _, trace = await client.request("GET", f"/jobs/{job['id']}/trace")
        assert status == 200 and isinstance(json.loads(trace), list)

        # Warm resubmit: every point arrives as a cache_hit instant.
        status, job2 = await client.post_json("/jobs", spec)
        events2 = await client.collect_events(f"/jobs/{job2['id']}/events", timeout=30)
        counts = _counts(events2)
        assert counts.get("cache_hit") == 2 and "progress" not in counts
        _, detail2 = await client.get_json(f"/jobs/{job2['id']}")
        assert detail2["evaluated"] == 0 and detail2["cache_hits"] == 2
        status, _, report2 = await client.request("GET", f"/jobs/{job2['id']}/report")
        assert report2 == report  # cache-independent document

    asyncio.run(_with_server(_config(tmp_path), body))


def test_sse_metrics_frames_and_late_subscriber(tmp_path):
    spec = {
        "target": "svc-sleepy",
        "grid": {"x": [1, 2, 3]},
        "base": {"sleep_s": 0.1},
    }

    async def body(server, client):
        _, job = await client.post_json("/jobs", spec)
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        counts = _counts(events)
        assert counts["progress"] == 3
        metrics_frames = [d for e, d in events if e == "metrics"]
        assert metrics_frames, "expected periodic obs snapshots on the stream"
        assert "sweep.progress" in metrics_frames[-1]["metrics"]
        # A subscriber connecting after completion replays history and
        # terminates immediately on the recorded terminal event.
        replayed = await client.collect_events(f"/jobs/{job['id']}/events", timeout=5)
        replay_counts = _counts(replayed)
        assert replay_counts["progress"] == 3 and replay_counts["done"] == 1

    asyncio.run(_with_server(_config(tmp_path), body))


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------


def test_backpressure_429_with_retry_after(tmp_path):
    spec = {"target": "svc-sleepy", "grid": {"x": [1, 2]}, "base": {"sleep_s": 0.3}}

    async def body(server, client):
        # capacity = job_workers(1) + queue_size(1) = 2; submit 3x that.
        submissions = [await client.post_json("/jobs", spec) for _ in range(6)]
        accepted = [job for status, job in submissions if status == 202]
        statuses = [status for status, _ in submissions]
        assert statuses.count(202) == 2
        assert statuses.count(429) == 4
        # Rejections carry Retry-After.
        status, headers, body_bytes = await client.request(
            "POST", "/jobs", spec
        )
        assert status == 429 and "retry-after" in headers
        assert json.loads(body_bytes)["error"] == "job queue at capacity"
        # Every accepted job completes.
        for job in accepted:
            events = await client.collect_events(
                f"/jobs/{job['id']}/events", timeout=30
            )
            assert events[-1][0] == "done"
        # Capacity freed: submissions succeed again.
        status, _ = await client.post_json("/jobs", spec)
        assert status == 202

    asyncio.run(
        _with_server(_config(tmp_path, job_workers=1, queue_size=1), body)
    )


def test_event_broker_bounded_buffers():
    """Slow consumers lose droppable frames, never grow unbounded, and
    always still receive the terminal event."""
    broker = EventBroker(buffer=4)

    async def body():
        replay, queue = broker.subscribe()
        assert replay == []
        for i in range(100):
            broker.publish("metrics", {"i": i}, droppable=True)
        assert queue.qsize() == 4 and broker.dropped == 96
        for i in range(50):
            broker.publish("progress", {"i": i})
        assert queue.qsize() == 4  # oldest evicted, never blocked
        broker.publish("done", {"state": "done"})
        drained = []
        while not queue.empty():
            drained.append(queue.get_nowait())
        assert drained[-1][0] == "done"
        # History kept every critical event for replay despite the
        # bounded live buffer.
        assert sum(1 for e, _ in broker.history if e == "progress") == 50
        broker.unsubscribe(queue)
        assert broker.subscribers == 0

    asyncio.run(body())


# ---------------------------------------------------------------------------
# cancellation
# ---------------------------------------------------------------------------


def test_cancel_route(tmp_path):
    spec = {"target": "svc-sleepy", "grid": {"x": list(range(10))}, "base": {"sleep_s": 0.15}}

    async def body(server, client):
        _, job = await client.post_json("/jobs", spec)
        async for event, data in client.events(
            f"/jobs/{job['id']}/events", stop_on_terminal=False
        ):
            if event == "progress":
                break
        status, cancelled = await client.delete_json(f"/jobs/{job['id']}")
        assert status == 200
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        assert events[-1][0] == "cancelled"
        _, detail = await client.get_json(f"/jobs/{job['id']}")
        assert detail["state"] == "cancelled"
        assert 0 < detail["done"] < detail["total"]
        # Cancel is idempotent.
        status, again = await client.delete_json(f"/jobs/{job['id']}")
        assert status == 200 and again["state"] == "cancelled"
        # The cancelled job's completed points are cached: resubmitting
        # the same spec serves them as hits.
        _, job2 = await client.post_json("/jobs", spec)
        await client.collect_events(f"/jobs/{job2['id']}/events", timeout=60)
        _, detail2 = await client.get_json(f"/jobs/{job2['id']}")
        assert detail2["state"] == "done"
        assert detail2["cache_hits"] >= detail["done"]

    asyncio.run(_with_server(_config(tmp_path), body))


def test_cancel_queued_job(tmp_path):
    slow = {"target": "svc-sleepy", "grid": {"x": [1, 2, 3]}, "base": {"sleep_s": 0.3}}

    async def body(server, client):
        _, running = await client.post_json("/jobs", slow)
        _, queued = await client.post_json("/jobs", slow)
        status, cancelled = await client.delete_json(f"/jobs/{queued['id']}")
        assert status == 200 and cancelled["state"] == "cancelled"
        assert cancelled["done"] == 0
        events = await client.collect_events(f"/jobs/{running['id']}/events", timeout=30)
        assert events[-1][0] == "done"

    asyncio.run(
        _with_server(_config(tmp_path, job_workers=1, queue_size=2), body)
    )


# ---------------------------------------------------------------------------
# per-point errors and bad requests
# ---------------------------------------------------------------------------


def test_point_errors_stream_as_error_events(tmp_path):
    spec = {"target": "svc-flaky", "grid": {"x": [1, 2, 3, 4]}}

    async def body(server, client):
        _, job = await client.post_json("/jobs", spec)
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        errors = [d for e, d in events if e == "error"]
        assert sorted(d["config"]["x"] for d in errors) == [2, 4]
        for d in errors:
            assert d["error"]["type"] == "ValueError"
            assert "exploded" in d["error"]["message"]
            assert "traceback" in d["error"]
        assert events[-1][0] == "done" and events[-1][1]["errors"] == 2
        status, _, report = await client.request("GET", f"/jobs/{job['id']}/report")
        doc = json.loads(report)
        failed = [p for p in doc["points"] if p["result"] is None]
        assert len(failed) == 2 and all("error" in p for p in failed)

    asyncio.run(_with_server(_config(tmp_path), body))


def test_faults_payload_accepted_and_validated(tmp_path):
    schedule = {"events": [{"time": 1.0, "kind": "gpu", "target": "decode", "mttr": 2.0}]}
    spec = {
        "target": "serving",
        "grid": {"request_rate": [6]},
        "base": {**SERVING_BASE, "num_requests": 40},
        "faults": schedule,
        "seed": 1,
    }

    async def body(server, client):
        status, job = await client.post_json("/jobs", spec)
        assert status == 202
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        assert events[-1][0] == "done" and events[-1][1]["errors"] == 0
        # Malformed schedules are rejected up front, not at run time.
        bad = dict(spec, faults={"events": [{"time": -3, "kind": "gpu"}]})
        status, payload = await client.post_json("/jobs", bad)
        assert status == 400 and "fault" in payload["error"]

    asyncio.run(_with_server(_config(tmp_path), body))


def test_http_error_paths(tmp_path):
    async def body(server, client):
        status, payload = await client.get_json("/jobs/nope")
        assert status == 404
        status, _ = await client.get_json("/no/such/route")
        assert status == 404
        status, _, _ = await client.request("PUT", "/jobs")
        assert status == 405
        status, _, body_bytes = await client.request("POST", "/jobs", {"target": "bogus"})
        assert status == 400 and b"unknown target" in body_bytes
        reader, writer = await asyncio.open_connection(client.host, client.port)
        writer.write(b"POST /jobs HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson")
        await writer.drain()
        raw = await reader.read()
        assert b"400" in raw.split(b"\r\n", 1)[0]
        writer.close()
        # No grid and no points:
        status, _ = await client.post_json("/jobs", {"target": "serving"})
        assert status == 400
        # Report for a job that has not finished:
        _, job = await client.post_json(
            "/jobs",
            {"target": "svc-sleepy", "grid": {"x": [1]}, "base": {"sleep_s": 0.5}},
        )
        status, _, _ = await client.request("GET", f"/jobs/{job['id']}/report")
        assert status == 404

    asyncio.run(_with_server(_config(tmp_path), body))


# ---------------------------------------------------------------------------
# kill the real server, restart, resume
# ---------------------------------------------------------------------------


def _serve_subprocess(state: Path, cache: Path) -> subprocess.Popen:
    (state / "server.json").unlink(missing_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0", "--state-dir", str(state), "--cache-dir", str(cache),
            "--heartbeat", "0.3", "--metrics-interval", "0.1",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def _bound_port(state: Path, proc: subprocess.Popen, timeout: float = 20.0) -> int:
    info = state / "server.json"
    deadline = time.time() + timeout
    while time.time() < deadline:
        if info.is_file():
            return json.loads(info.read_text())["port"]
        if proc.poll() is not None:
            raise RuntimeError(f"server died: {proc.stderr.read().decode()}")
        time.sleep(0.05)
    raise RuntimeError("server never wrote server.json")


RESUME_GRID = [2, 3, 4, 5, 6, 7]
RESUME_BASE = {"num_requests": 2000, "prompt_mean": 256, "output_mean": 64}


def test_kill_and_resume_from_journal_and_cache(tmp_path):
    """The headline session invariant: SIGKILL the server mid-job,
    restart against the same state/cache dirs, and the job completes
    with zero recomputation of already-cached points and a report
    byte-identical to an uninterrupted run."""
    state, cache = tmp_path / "state", tmp_path / "cache"
    state.mkdir()
    spec = {
        "target": "serving",
        "grid": {"request_rate": RESUME_GRID},
        "base": RESUME_BASE,
        "seed": 9,
    }

    proc = _serve_subprocess(state, cache)
    try:
        port = _bound_port(state, proc)

        async def submit_and_watch() -> str:
            client = ServiceClient("127.0.0.1", port)
            await client.wait_healthy()
            _, job = await client.post_json("/jobs", spec)
            seen = 0
            async for event, _data in client.events(
                f"/jobs/{job['id']}/events", stop_on_terminal=False
            ):
                if event == "progress":
                    seen += 1
                    if seen >= 2:
                        break
            return job["id"]

        job_id = asyncio.run(asyncio.wait_for(submit_and_watch(), timeout=60))
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

    cached_before_restart = sum(1 for _ in cache.glob("??/*.json"))
    assert cached_before_restart >= 2  # the observed progress is durable

    proc = _serve_subprocess(state, cache)
    try:
        port = _bound_port(state, proc)

        async def resume_and_fetch() -> tuple[dict, bytes]:
            client = ServiceClient("127.0.0.1", port)
            await client.wait_healthy()
            events = await client.collect_events(f"/jobs/{job_id}/events", timeout=90)
            assert events[-1][0] == "done"
            _, detail = await client.get_json(f"/jobs/{job_id}")
            _, _, report = await client.request("GET", f"/jobs/{job_id}/report")
            return detail, report

        detail, report = asyncio.run(asyncio.wait_for(resume_and_fetch(), timeout=120))
    finally:
        proc.terminate()
        proc.wait()

    # Resume recomputed nothing that was already cached...
    assert detail["state"] == "done" and detail["resumed"] is True
    assert detail["cache_hits"] == cached_before_restart
    assert detail["evaluated"] == len(RESUME_GRID) - cached_before_restart
    # ...and the report is byte-identical to an uninterrupted run.
    direct = run_sweep(
        SweepSpec(
            target="serving",
            points=grid(request_rate=RESUME_GRID),
            base=RESUME_BASE,
            seed=9,
        ),
        cache=None,
    )
    assert report == direct.to_report_json().encode()


def _telemetry_spec() -> dict:
    """A windowed, SLO-monitored, fault-injected serving job: one decode
    node dies at t=3s and rejoins at t=6s."""
    return {
        "target": "serving",
        "grid": {"request_rate": [8]},
        "base": {
            **SERVING_BASE,
            "num_requests": 120,
            "mode": "disaggregated",
            "prompt_mean": 256,
            "output_mean": 64,
        },
        "window_s": 2.0,
        "slo": ["burn>2@0.9"],
        "faults": {
            "events": [{"time": 3.0, "kind": "node", "target": "decode", "mttr": 3.0}]
        },
        "seed": 17,
    }


def test_metrics_exposition_and_self_telemetry(tmp_path):
    from repro.obs import parse_openmetrics

    spec = {"target": "serving", "grid": {"request_rate": [4]}, "base": SERVING_BASE}

    async def body(server, client):
        _, job = await client.post_json("/jobs", spec)
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        await asyncio.sleep(0.15)  # let the telemetry pump tick
        status, headers, text = await client.request("GET", "/metrics")
        assert status == 200
        assert headers["content-type"].startswith("application/openmetrics-text")
        families = parse_openmetrics(text.decode())
        # Server self-telemetry families.
        for family in (
            "service_loop_lag_s",
            "service_queue_depth",
            "service_workers_utilization",
            "service_cache_hit_ratio",
            "service_journal_fsync_s",
            "service_points_settled",
        ):
            assert family in families, family
        assert families["service_points_settled"]["samples"][0]["value"] == 1
        # The job's registry rides along, labeled.
        progress = families["sweep_progress"]["samples"]
        assert progress[0]["labels"] == {"job": job["id"]}
        # Two scrapes are monotone on counters (http requests grew).
        first = families["service_http_requests"]["samples"][0]["value"]
        _, _, text2 = await client.request("GET", "/metrics")
        second = parse_openmetrics(text2.decode())
        assert second["service_http_requests"]["samples"][0]["value"] > first
        # The legacy JSON snapshot stays available behind ?format=json.
        status, snap = await client.get_json("/metrics?format=json")
        assert status == 200 and set(snap) == {"server"}  # legacy shape
        assert snap["server"]["service.points.settled"] == 1
        assert 0.0 <= snap["server"]["service.workers.utilization"] <= 1.0
        assert isinstance(snap["server"]["service.journal.fsync_s"], dict)

    asyncio.run(_with_server(_config(tmp_path, telemetry_interval_s=0.05), body))


def test_alert_frames_ride_the_stream_and_replay(tmp_path):
    async def body(server, client):
        _, job = await client.post_json("/jobs", _telemetry_spec())
        events = await client.collect_events(f"/jobs/{job['id']}/events", timeout=60)
        alerts = [d for e, d in events if e == "alert"]
        states = [a["state"] for a in alerts]
        assert "fire" in states and "resolve" in states
        fire = next(a for a in alerts if a["state"] == "fire")
        assert fire["rule"] == "burn>2@0.9"
        assert fire["during_fault"] and fire["fault_target"] == "decode"
        assert fire["job"] == job["id"] and fire["index"] == 0
        # Alert frames are critical: a late subscriber replays them.
        replayed = await client.collect_events(f"/jobs/{job['id']}/events", timeout=5)
        assert [d for e, d in replayed if e == "alert"] == alerts

    asyncio.run(_with_server(_config(tmp_path), body))


def test_report_windows_section_is_opt_in(tmp_path):
    from repro.obs import merge_window_rollups

    async def body(server, client):
        spec = _telemetry_spec()
        spec["grid"] = {"request_rate": [6, 8]}
        _, job = await client.post_json("/jobs", spec)
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=60)
        # Default report: the verbatim artifact, no merged section.
        status, _, report = await client.request("GET", f"/jobs/{job['id']}/report")
        assert status == 200
        doc = json.loads(report)
        assert "windows" not in doc
        assert doc["points"][0]["result"]["windows"]  # per-point rollups ride
        # ?windows=1 derives the cross-point merge on demand.
        status, _, with_windows = await client.request(
            "GET", f"/jobs/{job['id']}/report?windows=1"
        )
        assert status == 200
        merged_doc = json.loads(with_windows)
        section = merged_doc["windows"]
        assert section["points"] == 2
        expected = merge_window_rollups(
            [p["result"]["windows"] for p in doc["points"]]
        )
        assert section["merged"] == json.loads(json.dumps(expected))
        assert len(section["summaries"]) == len(expected)
        # Everything but the added section is unchanged.
        merged_doc.pop("windows")
        assert merged_doc == doc

    asyncio.run(_with_server(_config(tmp_path), body))


def test_dash_page_embeds_jobs(tmp_path):
    spec = {"target": "serving", "grid": {"request_rate": [4]}, "base": SERVING_BASE}

    async def body(server, client):
        status, headers, page = await client.request("GET", "/dash")
        assert status == 200 and headers["content-type"].startswith("text/html")
        html = page.decode()
        assert "no jobs yet" in html and "EventSource" in html
        _, job = await client.post_json("/jobs", spec)
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        _, _, page = await client.request("GET", "/dash")
        html = page.decode()
        assert job["id"] in html  # embedded snapshot covers terminal jobs

    asyncio.run(_with_server(_config(tmp_path), body))


def test_telemetry_payload_validation(tmp_path):
    spec = {"target": "serving", "grid": {"request_rate": [4]}, "base": SERVING_BASE}

    async def body(server, client):
        status, payload = await client.post_json("/jobs", {**spec, "window_s": -1.0})
        assert status == 400 and "window_s" in payload["error"]
        status, payload = await client.post_json("/jobs", {**spec, "window_s": True})
        assert status == 400 and "window_s" in payload["error"]
        status, payload = await client.post_json(
            "/jobs", {**spec, "slo": ["burn>2@0.9"]}
        )
        assert status == 400 and "window_s" in payload["error"]
        status, payload = await client.post_json(
            "/jobs", {**spec, "window_s": 2.0, "slo": ["garbage"]}
        )
        assert status == 400 and "slo" in payload["error"].lower()
        status, payload = await client.post_json(
            "/jobs", {**spec, "window_s": 2.0, "slo": []}
        )
        assert status == 400 and "slo" in payload["error"].lower()
        # A well-formed pair is accepted, with the rules canonicalized.
        status, job = await client.post_json(
            "/jobs", {**spec, "window_s": 2.0, "slo": ["burn>2@0.9"]}
        )
        assert status == 202
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        _, detail = await client.get_json(f"/jobs/{job['id']}")
        assert detail["state"] == "done" and detail["errors"] == 0

    asyncio.run(_with_server(_config(tmp_path), body))


def test_restart_lists_finished_jobs(tmp_path):
    """Terminal jobs survive a restart: listed, artifact-served, and
    their SSE stream replays to an immediate terminal event."""
    config = _config(tmp_path)
    spec = {"target": "serving", "grid": {"request_rate": [5]}, "base": SERVING_BASE}
    job_box = {}

    async def first(server, client):
        _, job = await client.post_json("/jobs", spec)
        await client.collect_events(f"/jobs/{job['id']}/events", timeout=30)
        job_box["id"] = job["id"]

    async def second(server, client):
        status, listing = await client.get_json("/jobs")
        assert [j["id"] for j in listing["jobs"]] == [job_box["id"]]
        assert listing["jobs"][0]["state"] == "done"
        status, _, report = await client.request(
            "GET", f"/jobs/{job_box['id']}/report"
        )
        assert status == 200 and json.loads(report)["target"] == "serving"
        events = await client.collect_events(f"/jobs/{job_box['id']}/events", timeout=5)
        assert events[-1][0] == "done"
        # New jobs on the restarted server get fresh ids.
        _, job2 = await client.post_json("/jobs", spec)
        assert job2["id"] != job_box["id"]
        await client.collect_events(f"/jobs/{job2['id']}/events", timeout=30)

    asyncio.run(_with_server(config, first))
    asyncio.run(_with_server(config, second))
