"""Inference models: §2.3.2 TPOT limits, §2.2.2 decode, §2.3.3 MTP."""

import numpy as np
import pytest

from repro.core import AI_SOC
from repro.inference import (
    DEEPSEEK_V3_INFERENCE,
    EPInferenceConfig,
    Workload,
    comm_time_per_stage,
    compare_interconnects,
    decode_tps,
    mtp_speedup,
    offloaded_decode_tps,
    plan_deployment,
    prefill_gpus_needed,
    simulate_acceptance,
    soc_decode_tps,
    speculative_generate,
    time_per_layer,
    tokens_per_second,
    tpot_limit,
)
from repro.model import DEEPSEEK_V2, DEEPSEEK_V3, LLAMA31_70B, TINY_MLA_MOE, Transformer


def test_section_232_ib_numbers_exact():
    """(1B+2B) x 32 x 9 x 7K / 50GB/s = 120.96us; TPOT 14.76ms; ~67 tok/s."""
    cfg = DEEPSEEK_V3_INFERENCE
    assert comm_time_per_stage(cfg, 50e9) == pytest.approx(120.96e-6)
    assert time_per_layer(cfg, 50e9) == pytest.approx(241.92e-6)
    assert tpot_limit(cfg, 50e9) == pytest.approx(14.757e-3, rel=1e-3)
    assert tokens_per_second(cfg, 50e9) == pytest.approx(67.8, rel=0.01)


def test_section_232_gb200_numbers_exact():
    """GB200 NVL72: 6.72us per stage, ~0.82ms TPOT, ~1200 tok/s."""
    cfg = DEEPSEEK_V3_INFERENCE
    assert comm_time_per_stage(cfg, 900e9) == pytest.approx(6.72e-6)
    assert tpot_limit(cfg, 900e9) == pytest.approx(0.82e-3, rel=0.01)
    assert tokens_per_second(cfg, 900e9) > 1200


def test_compare_interconnects_rows():
    rows = compare_interconnects()
    assert rows[0].comm_stage_us == pytest.approx(120.96)
    assert rows[1].comm_stage_us == pytest.approx(6.72)
    assert rows[1].tokens_per_second / rows[0].tokens_per_second == pytest.approx(18.0)


def test_destinations_factor_nine():
    assert DEEPSEEK_V3_INFERENCE.destinations_per_token == 9


def test_comm_time_validation():
    with pytest.raises(ValueError):
        comm_time_per_stage(DEEPSEEK_V3_INFERENCE, 0.0)


def test_custom_ep_config():
    cfg = EPInferenceConfig(tokens_per_device=64)
    assert comm_time_per_stage(cfg, 50e9) == pytest.approx(2 * 120.96e-6)


# --- §2.2.2 decode ---------------------------------------------------------


def test_moe_on_soc_near_20_tps():
    """§2.2.2: DeepSeek-V2 activates 21B -> ~20 TPS on an AI SoC."""
    estimate = soc_decode_tps(DEEPSEEK_V2, AI_SOC, weight_dtype="fp8")
    assert 15 <= estimate.tokens_per_second <= 25


def test_dense_70b_single_digit_tps():
    """§2.2.2: comparable dense 70B reaches only single digits."""
    estimate = soc_decode_tps(LLAMA31_70B, AI_SOC, weight_dtype="fp8")
    assert estimate.tokens_per_second < 10


def test_moe_beats_dense_by_3x_or_more():
    moe = soc_decode_tps(DEEPSEEK_V2, AI_SOC).tokens_per_second
    dense = soc_decode_tps(LLAMA31_70B, AI_SOC).tokens_per_second
    assert moe > 3 * dense


def test_ktransformers_style_v3_near_20_tps():
    """§2.2.2: full V3 on a consumer-GPU server at ~20 TPS."""
    estimate = offloaded_decode_tps(DEEPSEEK_V3, gpu_bandwidth=1.0e12)
    assert 15 <= estimate.tokens_per_second <= 35


def test_decode_tps_kv_cache_slows_long_context():
    short = decode_tps(DEEPSEEK_V3, 3.35e12, context_tokens=0)
    long = decode_tps(DEEPSEEK_V3, 3.35e12, context_tokens=500_000)
    assert long.tokens_per_second < short.tokens_per_second


def test_decode_validation():
    with pytest.raises(ValueError):
        decode_tps(DEEPSEEK_V3, 0.0)
    with pytest.raises(ValueError):
        decode_tps(DEEPSEEK_V3, 1e12, weight_dtype="fp13")
    with pytest.raises(ValueError):
        offloaded_decode_tps(DEEPSEEK_V3, gpu_bandwidth=0.0)


# --- §2.3.3 MTP ------------------------------------------------------------


def test_mtp_speedup_matches_paper():
    """80-90% acceptance -> ~1.8x generation TPS."""
    assert mtp_speedup(0.80) == pytest.approx(1.77, abs=0.02)
    assert mtp_speedup(0.90) == pytest.approx(1.87, abs=0.02)


def test_mtp_speedup_bounds():
    assert mtp_speedup(0.0) < 1.0  # pure overhead without acceptance
    assert mtp_speedup(1.0, draft_overhead=0.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        mtp_speedup(1.5)
    with pytest.raises(ValueError):
        mtp_speedup(0.5, draft_overhead=-0.1)


def test_simulate_acceptance_statistics():
    rng = np.random.default_rng(0)
    mean = simulate_acceptance(0.85, 20_000, rng)
    assert mean == pytest.approx(1.85, abs=0.02)
    with pytest.raises(ValueError):
        simulate_acceptance(0.5, 0, rng)


def test_speculative_generate_lossless():
    """Speculative output must equal plain greedy decoding."""
    model = Transformer(TINY_MLA_MOE, seed=0)
    prompt = np.random.default_rng(1).integers(0, 256, size=(1, 6))
    spec = speculative_generate(model, prompt, 15)
    greedy = model.greedy_generate(prompt, 15)
    assert np.array_equal(spec.tokens, greedy[0])
    assert spec.decoding_steps <= 15
    assert 0 <= spec.acceptance_rate <= 1
    assert 1 <= spec.tokens_per_step <= 2


def test_speculative_requires_mtp_and_single_batch():
    from repro.model import TINY_DENSE_GQA

    no_mtp = Transformer(TINY_DENSE_GQA, seed=0)
    with pytest.raises(ValueError):
        speculative_generate(no_mtp, np.zeros((1, 4), int), 4)
    model = Transformer(TINY_MLA_MOE, seed=0)
    with pytest.raises(ValueError):
        speculative_generate(model, np.zeros((2, 4), int), 4)


# --- Disaggregation ---------------------------------------------------------


def test_plan_deployment_interference():
    workload = Workload(requests_per_second=10, prompt_tokens=2048, output_tokens=512)
    plan = plan_deployment(DEEPSEEK_V3, workload, decode_tpot=0.05)
    assert plan.prefill_gpus > 0
    assert plan.decode_gpus > 0
    assert plan.colocated_tpot > plan.disaggregated_tpot
    assert plan.tpot_inflation_colocated > 1.0


def test_prefill_sizing_scales_with_rate():
    w1 = Workload(1, 2048, 256)
    w10 = Workload(10, 2048, 256)
    assert prefill_gpus_needed(DEEPSEEK_V3, w10) == pytest.approx(
        10 * prefill_gpus_needed(DEEPSEEK_V3, w1)
    )


def test_workload_validation():
    with pytest.raises(ValueError):
        Workload(0, 100, 100)
