"""Chunked workload generation is byte-identical to an eager draw.

The streaming serving core bounds transient memory by sampling the
request stream in ``chunk_requests``-sized batches
(:func:`repro.serving.generate_request_columns`).  These tests pin the
load-bearing property: chunking is *invisible* — arrivals, lengths, and
the final ``SimReport`` are exactly equal for every chunk size, because
numpy Generators produce identical streams whether a distribution is
sampled once with ``size=n`` or in consecutive slices summing to n.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.serving import (
    ServingSimulator,
    SimConfig,
    WorkloadSpec,
    generate_request_columns,
    generate_requests,
    report_asdict,
)

SPECS = {
    "poisson": WorkloadSpec(request_rate=4.0, num_requests=500),
    "bursty": WorkloadSpec(request_rate=4.0, num_requests=500, arrival="bursty"),
    "cv0": WorkloadSpec(request_rate=4.0, num_requests=500, prompt_cv=0.0, output_cv=0.0),
    "mixed-cv": WorkloadSpec(
        request_rate=2.0, num_requests=301, arrival="bursty", prompt_cv=0.0, output_cv=0.8
    ),
}


def _columns(spec: WorkloadSpec, chunk: int, seed: int = 7):
    return generate_request_columns(spec, np.random.default_rng(seed), chunk_requests=chunk)


@pytest.mark.parametrize("name", sorted(SPECS))
@pytest.mark.parametrize("chunk", [1, 7, 64, 499, 500, 501, 10_000])
def test_chunked_columns_match_eager(name: str, chunk: int) -> None:
    spec = SPECS[name]
    eager = _columns(spec, chunk=spec.num_requests + 1)  # single-batch draw
    chunked = _columns(spec, chunk=chunk)
    assert np.array_equal(eager.arrivals, chunked.arrivals)
    assert np.array_equal(eager.prompts, chunked.prompts)
    assert np.array_equal(eager.outputs, chunked.outputs)


@pytest.mark.parametrize("name", sorted(SPECS))
def test_column_invariants(name: str) -> None:
    spec = SPECS[name]
    columns = _columns(spec, chunk=53)
    assert len(columns) == spec.num_requests
    gaps = np.diff(columns.arrivals, prepend=0.0)
    assert (gaps > 0).all(), "arrivals must be strictly increasing"
    assert columns.prompts.min() >= 1 and columns.outputs.min() >= 1
    assert columns.arrivals.dtype == np.float64
    assert columns.prompts.dtype == np.int64


def test_generate_requests_wraps_columns() -> None:
    spec = SPECS["bursty"]
    columns = _columns(spec, chunk=spec.num_requests + 1, seed=3)
    requests = generate_requests(spec, np.random.default_rng(3))
    assert len(requests) == len(columns)
    for i in (0, 1, len(columns) // 2, len(columns) - 1):
        assert requests[i].rid == i
        assert requests[i].arrival == columns.arrivals[i]
        assert requests[i].prompt_tokens == columns.prompts[i]
        assert requests[i].output_tokens == columns.outputs[i]


def test_chunk_requests_validation() -> None:
    with pytest.raises(ValueError, match="chunk_requests"):
        generate_request_columns(SPECS["poisson"], np.random.default_rng(0), chunk_requests=0)


@pytest.mark.parametrize("chunk", [17, 1000])
def test_sim_report_invariant_to_chunk_size(monkeypatch, chunk: int) -> None:
    """The full SimReport is identical whatever chunk size fed the run."""
    config = SimConfig(
        workload=WorkloadSpec(request_rate=6.0, num_requests=250, arrival="bursty"),
        mode="disaggregated",
        seed=11,
    )
    baseline = report_asdict(ServingSimulator(config).run())
    monkeypatch.setattr(
        "repro.serving.simulator.generate_request_columns",
        functools.partial(generate_request_columns, chunk_requests=chunk),
    )
    assert report_asdict(ServingSimulator(config).run()) == baseline
