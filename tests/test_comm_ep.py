"""DeepEP dispatch/combine simulator and §4.3 traffic analysis."""

import numpy as np
import pytest

from repro.comm import (
    COMBINE_BYTES_PER_ELEMENT,
    DEEPSEEK_V3_EP,
    DISPATCH_BYTES_PER_ELEMENT,
    EPConfig,
    EPDeployment,
    ib_cost_factor,
    run_ep_stage,
)
from repro.model import node_limited_topk, topk_routing
from repro.network import build_mpft_cluster

RNG = np.random.default_rng


def _deployment(nodes=4, **overrides):
    cluster = build_mpft_cluster(nodes)
    cfg = EPConfig(
        num_routed_experts=256,
        experts_per_token=8,
        hidden_size=7168,
        max_nodes_per_token=overrides.pop("max_nodes_per_token", 4),
    )
    return EPDeployment(cluster, cfg)


def test_expert_placement_group_major():
    dep = _deployment(4)
    assert dep.experts_per_node == 64
    assert dep.experts_per_gpu == 8
    assert dep.node_of_expert(0) == 0
    assert dep.node_of_expert(255) == 3
    assert dep.gpu_of_expert(0) == "n0g0"
    assert dep.gpu_of_expert(63) == "n0g7"
    assert dep.gpu_of_expert(64) == "n1g0"


def test_deployment_divisibility_checks():
    cluster = build_mpft_cluster(3)
    with pytest.raises(ValueError):
        EPDeployment(cluster, EPConfig(256, 8))


def test_route_tokens_respects_node_limit():
    dep = _deployment(8)
    decisions = dep.route_tokens(64, RNG(0))
    assert set(decisions) == set(dep.cluster.gpus())
    for decision in decisions.values():
        nodes = decision.expert_ids // dep.experts_per_node
        for row in nodes:
            assert len(np.unique(row)) <= 4


def test_dispatch_traffic_is_node_deduplicated():
    """IB bytes of one token to one node: hidden x 1 byte, regardless
    of how many experts it hits there."""
    dep = _deployment(2)
    # One token from n0g0 to eight node-1 experts, one per GPU there
    # (experts_per_gpu = 16, so locals 0, 16, ..., 112).
    target_experts = 128 + 16 * np.arange(8)
    scores = RNG(1).uniform(0, 0.1, (1, 256))
    scores[0, target_experts] = 1.0
    decision = topk_routing(scores, 8)
    ib, nvlink = dep.dispatch_traffic({"n0g0": decision})
    token_bytes = 7168 * DISPATCH_BYTES_PER_ELEMENT
    assert sum(ib.values()) == token_bytes  # ONE copy over IB
    # Fan-out over NVLink to the 7 GPUs other than the entry GPU.
    assert sum(nvlink.values()) == 7 * token_bytes


def test_dispatch_local_node_uses_nvlink_only():
    dep = _deployment(2)
    scores = RNG(2).uniform(size=(1, 256))
    scores[0, 256 // 2 :] = 0  # force all experts onto node 0
    decision = topk_routing(scores, 8)
    ib, nvlink = dep.dispatch_traffic({"n0g0": decision})
    assert sum(ib.values()) == 0
    assert sum(nvlink.values()) > 0


def test_combine_is_bf16_reverse_of_dispatch():
    dep = _deployment(2)
    decisions = dep.route_tokens(32, RNG(3))
    ib_d, nv_d = dep.dispatch_traffic(decisions)
    ib_c, nv_c = dep.combine_traffic(decisions)
    ratio = COMBINE_BYTES_PER_ELEMENT / DISPATCH_BYTES_PER_ELEMENT
    assert sum(ib_c.values()) == pytest.approx(ratio * sum(ib_d.values()))
    assert sum(nv_c.values()) == pytest.approx(ratio * sum(nv_d.values()))
    for (a, b), v in ib_d.items():
        assert ib_c[(b, a)] == pytest.approx(v * ratio)


def test_run_ep_stage_bandwidth_below_nic_limit():
    dep = _deployment(4)
    decisions = dep.route_tokens(512, RNG(4))
    result = run_ep_stage(dep, decisions, "dispatch")
    assert 0 < result.per_gpu_bandwidth <= 40e9 * 1.01


def test_fig7_shape_bandwidth_saturates_with_scale():
    """Figure 7: per-GPU EP bandwidth approaches the 40GB/s NIC limit."""
    results = []
    for nodes in (2, 4, 8):
        dep = _deployment(nodes)
        decisions = dep.route_tokens(256, RNG(5))
        results.append(run_ep_stage(dep, decisions, "dispatch").per_gpu_bandwidth)
    assert results[-1] > 35e9
    assert results[-1] <= 40e9 * 1.01


def test_run_ep_stage_validations():
    dep = _deployment(2)
    decisions = dep.route_tokens(8, RNG(6))
    with pytest.raises(ValueError):
        run_ep_stage(dep, decisions, "broadcast")


def test_ib_cost_factor_node_limited_vs_free():
    """§4.3: node-limited routing caps per-token IB cost at 4t vs ~8t."""
    scores = RNG(7).uniform(size=(2048, 256))
    free = topk_routing(scores, 8)
    limited = node_limited_topk(scores, 8, num_groups=8, max_groups=4)
    m_free = ib_cost_factor(free, experts_per_node=32)
    m_limited = ib_cost_factor(limited, experts_per_node=32)
    assert m_limited <= 4.0
    # Unrestricted top-8 over 8 nodes touches E[M] = 8(1-(7/8)^8) ~ 5.25.
    assert m_free > 5.0
    assert m_limited < m_free


def test_deepseek_v3_ep_preset():
    assert DEEPSEEK_V3_EP.destinations_per_token == 9
    assert DEEPSEEK_V3_EP.hidden_size == 7168
