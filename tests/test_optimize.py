"""The co-design optimizer (repro.optimize): DSL, ladders, search.

The engine guarantees the PR's acceptance criteria pin:

* a search's :meth:`SearchResult.to_report_json` — frontier, per-rung
  accounting, trajectory — is byte-identical at ``workers=1`` vs
  ``workers=4`` (the trajectory is a pure function of root seed +
  spec), and
* a warm re-search of an unchanged spec evaluates zero points while
  producing the identical report document.
"""

import json

import pytest

from repro.optimize import (
    FidelityLadder,
    MissingMetric,
    SearchSpec,
    dominates,
    frontier_of,
    get_ladder,
    pareto_front,
    parse_objective,
    register_ladder,
    run_search,
)
from repro.sweep import SweepCache, get_target, register_target

CALLS = {"count": 0}


def _quad_target(config: dict, seed: int) -> dict:
    """Deterministic synthetic landscape with a fidelity knob.

    Loss is a convex bowl around (3, 5) plus a bias that shrinks with
    fidelity ``n`` — low rungs rank roughly right, the top rung ranks
    exactly right.  ``steps`` doubles as the simulated-seconds cost.
    """
    CALLS["count"] += 1
    x, y, n = config["x"], config["y"], config["n"]
    bias = 16.0 / n
    return {"loss": (x - 3) ** 2 + (y - 5) ** 2 + bias, "steps": float(n), "seed": seed}


register_target("test_quad", _quad_target)
register_ladder("test_quad", FidelityLadder(key="n", rungs=(4, 16, 64), cost="steps"))

SPACE = {"x": list(range(8)), "y": list(range(8))}


def _spec(**overrides) -> SearchSpec:
    kwargs = dict(
        target="test_quad", objective="minimize loss", space=SPACE, seed=7, eta=4
    )
    kwargs.update(overrides)
    return SearchSpec(**kwargs)


# ---------------------------------------------------------------- DSL


def test_scalar_objective_parses_direction_and_constraints():
    obj = parse_objective("maximize goodput/cost s.t. tpot_p99<=0.05, completed>=10")
    assert obj.scalar
    assert obj.metrics[0].maximize
    assert [c.text for c in obj.constraints] == ["tpot_p99<=0.05", "completed>=10"]
    record = {
        "goodput_tokens_per_s": 100.0,
        "cost_per_token": 2.0,
        "tpot_p99_ms": 40.0,
        "completed": 12,
    }
    assert obj.feasible(record, {})
    assert obj.values(record, {}) == (50.0,)
    assert obj.vector(record, {}) == (-50.0,)  # maximize → negated


def test_aliases_rescale_display_units():
    obj = parse_objective("minimize tpot_p99")
    # tpot_p99 resolves to tpot_p99_ms and rescales to seconds.
    assert obj.values({"tpot_p99_ms": 50.0}, {}) == (0.05,)


def test_pareto_objective_directions_and_prefixes():
    obj = parse_objective("pareto(cost, goodput, min:slo_attainment)")
    assert not obj.scalar
    assert [m.maximize for m in obj.metrics] == [False, True, False]


def test_constraint_can_reference_config_axes():
    obj = parse_objective("minimize loss s.t. x<=4")
    assert obj.feasible({"loss": 1.0}, {"x": 3})
    assert not obj.feasible({"loss": 1.0}, {"x": 5})


def test_missing_or_null_metric_means_infeasible_not_error():
    obj = parse_objective("maximize goodput s.t. tpot_p99<=0.05")
    assert obj.values({}, {}) is None
    assert not obj.feasible({}, {})
    # Null (e.g. cost_per_token of a zero-token run) behaves like absent.
    obj2 = parse_objective("minimize cost")
    assert obj2.values({"cost_per_token": None}, {}) is None


def test_expression_arithmetic_and_rejection():
    obj = parse_objective("maximize (a+b)*2 - c/4")
    assert obj.values({"a": 1.0, "b": 2.0, "c": 8.0}, {}) == (4.0,)
    with pytest.raises(ValueError):
        parse_objective("maximize __import__('os').system('true')")
    with pytest.raises(ValueError):
        parse_objective("minimize a**2")  # pow not in the whitelist
    with pytest.raises(ValueError):
        parse_objective("best loss")


def test_division_by_zero_is_unscorable():
    obj = parse_objective("maximize goodput/cost")
    with pytest.raises(MissingMetric):
        obj.metrics[0].expr.evaluate({"goodput": 1.0, "cost": 0.0}, {})


def test_dominates_and_pareto_front():
    assert dominates((1.0, 1.0), (2.0, 2.0))
    assert not dominates((1.0, 3.0), (2.0, 2.0))
    front = pareto_front([(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0), None])
    assert front == [0, 1, 2]


# ------------------------------------------------------------- ladder


def test_builtin_ladders_registered():
    assert get_ladder("serving").key == "num_requests"
    assert get_ladder("flowsim").key == "shifts"
    assert get_ladder("training").key == "work_s"


def test_ladder_truncation_keeps_the_top_rungs():
    ladder = FidelityLadder(key="n", rungs=(1, 2, 3, 4), cost="1")
    assert ladder.truncated(2).rungs == (3, 4)
    assert ladder.truncated(None).rungs == (1, 2, 3, 4)
    with pytest.raises(ValueError):
        ladder.truncated(0)
    with pytest.raises(KeyError):
        get_ladder("no_such_target")


def test_fidelity_key_cannot_be_a_search_axis():
    with pytest.raises(ValueError):
        _spec(space={"n": [1, 2], "x": [1]}).resolved_ladder()


# ------------------------------------------------------------- search


def test_search_finds_the_optimum_with_fewer_evaluations():
    result = run_search(_spec())
    assert result.frontier[0]["config"]["x"] == 3
    assert result.frontier[0]["config"]["y"] == 5
    assert result.frontier[0]["config"]["n"] == 64  # top fidelity
    # Successive halving: 64@4 + 16@16 + 4@64 sim-steps vs 64@64 grid.
    assert result.sim_seconds == 64 * 4 + 16 * 16 + 4 * 64
    assert result.grid_points == 64
    assert result.grid_sim_seconds == 64 * 64
    assert result.speedup > 5.0


def test_search_is_byte_identical_at_workers_1_vs_4(tmp_path):
    r1 = run_search(_spec(), workers=1, cache=SweepCache(tmp_path / "a"))
    r4 = run_search(_spec(), workers=4, cache=SweepCache(tmp_path / "b"))
    assert r1.to_report_json() == r4.to_report_json()
    assert r1.to_json() == r4.to_json()  # provenance counts match too (both cold)


def test_warm_research_evaluates_zero_points(tmp_path):
    cache = SweepCache(tmp_path)
    cold = run_search(_spec(), cache=cache)
    CALLS["count"] = 0
    warm = run_search(_spec(), cache=cache)
    assert CALLS["count"] == 0
    assert warm.evaluated == 0
    assert warm.cache_hits == len(warm.trajectory)
    assert warm.to_report_json() == cold.to_report_json()


def test_subsampled_search_expands_neighbors_to_the_optimum():
    result = run_search(_spec(initial=6))
    assert result.frontier[0]["config"]["x"] == 3
    assert result.frontier[0]["config"]["y"] == 5
    # Best-first expansion evaluated a fraction of the grid at rung 0.
    assert result.rungs[0]["candidates"] < 64
    assert result.rungs[0]["batches"] > 1


def test_budget_stops_new_batches():
    result = run_search(_spec(budget_s=100.0))
    assert result.stopped_early
    assert result.sim_seconds == 64 * 4  # the first rung-0 batch completes
    assert len(result.rungs) == 1
    # The frontier still reports from the highest rung reached.
    assert result.frontier[0]["config"]["n"] == 4


def test_pareto_search_frontier_is_nondominated_and_sorted(tmp_path):
    spec = _spec(objective="pareto(min:loss, min:x)")
    result = run_search(spec, cache=SweepCache(tmp_path))
    assert len(result.frontier) > 1
    vectors = [(e["metrics"]["loss"], e["metrics"]["x"]) for e in result.frontier]
    assert vectors == sorted(vectors)
    for i, a in enumerate(vectors):
        assert not any(dominates(b, a) for j, b in enumerate(vectors) if j != i)


def test_infeasible_everything_yields_empty_frontier():
    result = run_search(_spec(objective="minimize loss s.t. loss<=-1"))
    assert result.frontier == ()
    assert len(result.trajectory) > 0  # the search still ran


def test_frontier_of_matches_exhaustive_grid(tmp_path):
    """Search frontier == grid frontier, computed via the same helper."""
    from repro.sweep import SweepSpec, grid, run_sweep

    spec = _spec()
    search = run_search(spec, cache=SweepCache(tmp_path))
    grid_spec = SweepSpec(
        target="test_quad",
        points=grid(x=SPACE["x"], y=SPACE["y"], n=64),
        seed=7,
    )
    full = run_sweep(grid_spec, cache=SweepCache(tmp_path))
    objective = parse_objective(spec.objective)
    expected = frontier_of(objective, full.report_payload()["points"])
    assert json.dumps(list(search.frontier), sort_keys=True) == json.dumps(
        expected, sort_keys=True
    )


def test_space_axis_order_is_canonicalized():
    a = run_search(SearchSpec(target="test_quad", objective="minimize loss",
                              space={"x": SPACE["x"], "y": SPACE["y"]}, seed=7))
    b = run_search(SearchSpec(target="test_quad", objective="minimize loss",
                              space={"y": SPACE["y"], "x": SPACE["x"]}, seed=7))
    assert a.to_report_json() == b.to_report_json()


def test_search_spec_validation():
    with pytest.raises(ValueError):
        SearchSpec(target="t", objective="minimize loss", space={})
    with pytest.raises(ValueError):
        SearchSpec(target="t", objective="minimize loss", space={"x": []})
    with pytest.raises(ValueError):
        _spec(eta=1)
    with pytest.raises(ValueError):
        _spec(initial=0)


def test_optimize_counters(tmp_path):
    from repro.obs import MetricsRegistry

    metrics = MetricsRegistry()
    result = run_search(_spec(), cache=SweepCache(tmp_path), metrics=metrics)
    assert metrics.counter("optimize.evaluations").value == len(result.trajectory)
    assert metrics.counter("optimize.sim_seconds").value == result.sim_seconds
    assert metrics.counter("sweep.points").value == len(result.trajectory)


# ------------------------------------------- optimize as a sweep target


def test_optimize_target_resolves_lazily_and_runs():
    fn = get_target("optimize")
    payload = fn(
        {
            "target": "test_quad",
            "objective": "minimize loss",
            "space": {"x": [2, 3, 4], "y": [4, 5, 6]},
            "no_cache": True,
        },
        seed=7,
    )
    assert payload["frontier"][0]["config"]["x"] == 3
    assert "evaluated" not in payload  # report_payload: cache-independent
    with pytest.raises(ValueError):
        fn({"target": "test_quad", "objective": "minimize loss",
            "space": {"x": [1]}, "bogus": 1, "no_cache": True}, seed=0)


# --------------------------------------------------------------- CLI


def test_cli_optimize_json(tmp_path, capsys):
    from repro.cli import main

    rc = main(
        [
            "optimize",
            "--target", "test_quad",
            "--objective", "minimize loss",
            "--space", "x=2,3,4",
            "--space", "y=4,5,6",
            "--eta", "3",
            "--seed", "7",
            "--cache-dir", str(tmp_path),
            "--json",
        ]
    )
    assert rc == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["frontier"][0]["config"]["x"] == 3
    assert doc["speedup"] > 1.0
    assert doc["rungs"][0]["candidates"] == 9


def test_cli_optimize_table_and_errors(tmp_path, capsys):
    from repro.cli import main

    rc = main(
        [
            "optimize",
            "--target", "test_quad",
            "--objective", "minimize loss",
            "--space", "x=2,3,4",
            "--set", "y=5",
            "--no-cache",
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "frontier" in out and "rungs" in out
    with pytest.raises(SystemExit):
        main(["optimize", "--target", "test_quad",
              "--objective", "minimize loss"])  # no --space
    with pytest.raises(SystemExit):
        main(["optimize", "--target", "test_quad", "--objective", "best loss",
              "--space", "x=1,2", "--no-cache"])  # bad DSL
    with pytest.raises(SystemExit):
        main(["optimize", "--target", "no_such_target",
              "--objective", "minimize loss", "--space", "x=1,2"])
